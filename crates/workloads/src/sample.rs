//! `sample` — systematic per-bin sample selection (Table II row 2).
//!
//! Each record is a rating word; the Map bins it, counts it, and keeps every
//! 8th element of each bin as a representative sample. The keep decision
//! branches on the running per-bin count — a data-dependent branch whose
//! probability (87.5% skip) is intrinsic to the algorithm, not the data
//! distribution.
//!
//! Live-state layout (per context): 8 bins × 16 bytes, each
//! `[count, n_kept, element, pad]`.

use crate::gen::SplitMix64;
use crate::skeleton::{emit_single_field_kernel, R_ADDR};
use crate::{Reduced, Workload};
use millipede_isa::reg::{r, Reg};
use millipede_isa::{AddrSpace, AluOp, CmpOp};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid};

/// Histogram bins.
pub const NUM_BINS: usize = 8;
/// Keep every `KEEP_EVERY`-th element of a bin.
pub const KEEP_EVERY: u32 = 8;
/// Ratings are uniform in `[0, RATING_RANGE)`.
pub const RATING_RANGE: u32 = 256;
/// Per-context live-state bytes (8 bins × 16 B, plus the skipped counter).
pub const LIVE_BYTES: usize = NUM_BINS * 16 + 32;
const SKIP_OFF: i32 = (NUM_BINS * 16) as i32;

/// Builds the `sample` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(1, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| vec![rng.below(RATING_RANGE)]);
    let program = emit_single_field_kernel(
        "sample",
        |_| {},
        |b| {
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // rating
            b.alui(AluOp::And, r(11), r(10), (NUM_BINS - 1) as i32);
            b.alui(AluOp::Sll, r(11), r(11), 4); // bin*16
            b.ld(r(12), r(11), 0, AddrSpace::Local); // count
            b.alui(AluOp::Add, r(12), r(12), 1);
            b.st_local(r(12), r(11), 0);
            // Keep every 8th element of the bin; both sides of the
            // data-dependent branch do work (keep vs count-as-skipped).
            b.alui(AluOp::And, r(13), r(12), (KEEP_EVERY - 1) as i32);
            let skipped = b.label();
            let join = b.label();
            b.br(CmpOp::Ne, r(13), Reg::ZERO, skipped);
            b.ld(r(14), r(11), 4, AddrSpace::Local); // n_kept
            b.alui(AluOp::Add, r(14), r(14), 1);
            b.st_local(r(14), r(11), 4);
            b.st_local(r(10), r(11), 8); // kept element
            b.st_local(r(12), r(11), 12); // count snapshot at keep time
            b.jmp(join);
            b.bind(skipped);
            b.ld(r(14), Reg::ZERO, SKIP_OFF, AddrSpace::Local);
            b.alui(AluOp::Add, r(14), r(14), 1);
            b.st_local(r(14), Reg::ZERO, SKIP_OFF);
            b.bind(join);
        },
    );
    Workload {
        bench: crate::Benchmark::Sample,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// Host Reduce: per bin, sum counts and kept counts; combine the kept
/// representatives by taking the maximum (deterministic and associative);
/// the final element is the skipped count.
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64; 3 * NUM_BINS + 1];
    for s in states {
        for bin in 0..NUM_BINS {
            out[bin] += s[bin * 4] as i64;
            out[NUM_BINS + bin] += s[bin * 4 + 1] as i64;
            out[2 * NUM_BINS + bin] = out[2 * NUM_BINS + bin].max(s[bin * 4 + 2] as i64);
        }
        out[3 * NUM_BINS] += s[(SKIP_OFF / 4) as usize] as i64;
    }
    Reduced::Ints(out)
}

/// Golden reference: replays each thread's record visit order, because the
/// systematic keep rule depends on the per-thread running count.
pub fn reference(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut out = vec![0i64; 3 * NUM_BINS + 1];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let mut count = [0u32; NUM_BINS];
            let mut kept = [0u32; NUM_BINS];
            let mut elem = [0u32; NUM_BINS];
            for rec in grid.records_of_thread(layout, corelet, context) {
                let rating = w.dataset.records[rec][0];
                let bin = (rating as usize) & (NUM_BINS - 1);
                count[bin] += 1;
                if count[bin] % KEEP_EVERY == 0 {
                    kept[bin] += 1;
                    elem[bin] = rating;
                } else {
                    out[3 * NUM_BINS] += 1;
                }
            }
            for bin in 0..NUM_BINS {
                out[bin] += count[bin] as i64;
                out[NUM_BINS + bin] += kept[bin] as i64;
                out[2 * NUM_BINS + bin] = out[2 * NUM_BINS + bin].max(elem[bin] as i64);
            }
        }
    }
    Reduced::Ints(out)
}

/// Cluster-level combine: counts and kept/skipped totals add; the kept
/// representatives combine by maximum, mirroring [`reduce`].
pub fn combine(outputs: &[crate::Reduced]) -> crate::Reduced {
    let mut acc = match &outputs[0] {
        crate::Reduced::Ints(v) => v.clone(),
        other => panic!("sample output must be Ints, got {other:?}"),
    };
    for out in &outputs[1..] {
        let crate::Reduced::Ints(v) = out else {
            panic!("sample output must be Ints");
        };
        assert_eq!(v.len(), acc.len());
        for (i, (x, y)) in acc.iter_mut().zip(v).enumerate() {
            if (2 * NUM_BINS..3 * NUM_BINS).contains(&i) {
                *x = (*x).max(*y);
            } else {
                *x += y;
            }
        }
    }
    crate::Reduced::Ints(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::Sample, 3, 256, 11);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn kept_is_about_one_eighth_of_count() {
        let w = Workload::build(Benchmark::Sample, 32, 2048, 3);
        let grid = ThreadGrid::slab(32, 4);
        match w.run_functional(&grid) {
            Reduced::Ints(v) => {
                let counts: i64 = v[..NUM_BINS].iter().sum();
                let kept: i64 = v[NUM_BINS..2 * NUM_BINS].iter().sum();
                assert_eq!(counts, w.dataset.num_records() as i64);
                let ratio = kept as f64 / counts as f64;
                // Per-thread systematic sampling truncates, so the ratio
                // sits below 1/8.
                assert!((0.03..=0.125).contains(&ratio), "keep ratio {ratio}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kept_elements_fall_in_their_bin() {
        let w = Workload::build(Benchmark::Sample, 4, 512, 9);
        let grid = ThreadGrid::slab(16, 4);
        match w.run_functional(&grid) {
            Reduced::Ints(v) => {
                for bin in 0..NUM_BINS {
                    let e = v[2 * NUM_BINS + bin];
                    if e != 0 {
                        assert_eq!(e as usize & (NUM_BINS - 1), bin);
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
