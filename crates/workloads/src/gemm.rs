//! `gemm` — tiled dense matrix multiply streamed along the inner (k)
//! dimension (dense-kernel family; not in the paper).
//!
//! `C = A · B` with an `M×N` output tile held in local memory and the k
//! dimension streamed as records: record k carries column k of `A` (`M`
//! words) and row k of `B` (`N` words), and the kernel applies the
//! rank-1 update `C[i][j] += a[i] * b[j]` — the classic PIM-DRAM /
//! output-stationary GEMM decomposition. This is the *regular dense*
//! extreme: 16-word records, `M·N` fused multiply-adds per record
//! (ops/byte an order of magnitude above any BMLA), zero divergence,
//! and a perfectly sequential input stream — the case where the paper's
//! row-oriented optimizations should neither help nor hurt.
//!
//! Live-state layout (per context):
//!
//! | bytes   | contents |
//! |---------|----------|
//! | 0–255   | per-slot record scratch (64 B each: `a[M]` then `b[N]`) |
//! | 256–511 | `C[M*N]` (`f32`, output-stationary accumulator tile) |

use crate::gen::SplitMix64;
use crate::skeleton::{emit_multi_field_kernel, mv, R_ADDR, R_FIELD, R_SLOT};
use crate::{Reduced, Workload};
use millipede_isa::reg::r;
use millipede_isa::{AddrSpace, AluOp, CmpOp, FAluOp};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid, ABI_RPTC};

/// Output-tile rows (length of the `A` column per record).
pub const M: usize = 8;
/// Output-tile columns (length of the `B` row per record).
pub const N: usize = 8;
/// Record arity: `a[M]` then `b[N]`.
pub const NUM_FIELDS: usize = M + N;
/// Matrix entries are uniform in `[-ENTRY_RANGE, ENTRY_RANGE)`.
pub const ENTRY_RANGE: f32 = 1.0;

const XS_OFF: i32 = 0;
const XS_STRIDE_LOG2: i32 = 6; // 64-byte record scratch per slot
const C_OFF: i32 = 256;
/// Per-context live-state bytes.
pub const LIVE_BYTES: usize = C_OFF as usize + M * N * 4;

/// Builds the `gemm` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(NUM_FIELDS, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| {
        (0..NUM_FIELDS)
            .map(|_| rng.range_f32(-ENTRY_RANGE, ENTRY_RANGE).to_bits())
            .collect()
    });
    let program = emit_multi_field_kernel(
        "gemm",
        NUM_FIELDS,
        |_| {},
        None,
        |b| {
            // Stash this record's word into the slot's scratch row.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input);
            b.alui(AluOp::Sll, r(12), R_SLOT, XS_STRIDE_LOG2);
            b.alu(AluOp::Add, r(12), r(12), R_FIELD);
            b.st_local(r(10), r(12), XS_OFF);
        },
        |b| {
            // Per slot: rank-1 update C[i][j] += a[i] * b[j], walking C
            // row-major with a linearly advancing pointer.
            b.li(R_SLOT, 0);
            let sloop = b.label();
            b.bind(sloop);
            b.alui(AluOp::Sll, r(12), R_SLOT, XS_STRIDE_LOG2); // scratch base
            b.alui(AluOp::Add, r(14), r(12), (M * 4) as i32); // b[] base
            b.alui(AluOp::Add, r(15), r(14), (N * 4) as i32); // scratch end
            b.li(r(20), C_OFF as u32); // C pointer
            mv(b, r(16), r(12)); // a_i pointer
            let iloop = b.label();
            b.bind(iloop);
            b.ld(r(17), r(16), XS_OFF, AddrSpace::Local); // a_i
            mv(b, r(18), r(14)); // b_j pointer
            let jloop = b.label();
            b.bind(jloop);
            b.ld(r(19), r(18), XS_OFF, AddrSpace::Local); // b_j
            b.falu(FAluOp::Fmul, r(19), r(19), r(17));
            b.ld(r(21), r(20), 0, AddrSpace::Local);
            b.falu(FAluOp::Fadd, r(21), r(21), r(19));
            b.st_local(r(21), r(20), 0);
            b.alui(AluOp::Add, r(18), r(18), 4);
            b.alui(AluOp::Add, r(20), r(20), 4);
            b.br(CmpOp::Lt, r(18), r(15), jloop);
            b.alui(AluOp::Add, r(16), r(16), 4);
            b.br(CmpOp::Lt, r(16), r(14), iloop);
            b.alui(AluOp::Add, R_SLOT, R_SLOT, 1);
            b.br(CmpOp::Lt, R_SLOT, ABI_RPTC, sloop);
        },
    );
    Workload {
        bench: crate::Benchmark::Gemm,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// Host Reduce: the `M×N` tile, per-thread accumulators folded in thread
/// order.
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut c = vec![0.0f32; M * N];
    for s in states {
        for (i, slot) in c.iter_mut().enumerate() {
            *slot += f32::from_bits(s[(C_OFF / 4) as usize + i]);
        }
    }
    Reduced::Floats(c)
}

/// Golden reference: replays each thread's record order (f32 adds into a
/// C cell must fold exactly as the kernel's chunk-major, slot-order,
/// i-outer/j-inner walk does), then folds per-thread tiles in thread
/// order, mirroring [`reduce`].
pub fn reference(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut c = vec![0.0f32; M * N];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let mut tile = [0.0f32; M * N];
            for rec in grid.records_of_thread(layout, corelet, context) {
                let words = &w.dataset.records[rec];
                for i in 0..M {
                    let a = f32::from_bits(words[i]);
                    for j in 0..N {
                        let b = f32::from_bits(words[M + j]);
                        tile[i * N + j] += a * b;
                    }
                }
            }
            for (acc, t) in c.iter_mut().zip(tile) {
                *acc += t;
            }
        }
    }
    Reduced::Floats(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::Gemm, 3, 256, 17);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn functional_matches_reference_on_coalesced_grids() {
        let w = Workload::build(Benchmark::Gemm, 2, 512, 31);
        for grid in [
            ThreadGrid::coalesced(16, 4),
            ThreadGrid::block_columns(16, 4),
        ] {
            assert_eq!(w.run_functional(&grid), w.reference(&grid));
        }
    }

    #[test]
    fn tile_matches_a_naive_host_gemm_numerically() {
        // Independently of fold order: C ≈ Σ_k a_k ⊗ b_k computed in f64.
        let w = Workload::build(Benchmark::Gemm, 2, 1024, 41);
        let grid = ThreadGrid::slab(16, 4);
        let mut want = vec![0.0f64; M * N];
        for words in &w.dataset.records {
            for i in 0..M {
                for j in 0..N {
                    want[i * N + j] += f64::from(f32::from_bits(words[i]))
                        * f64::from(f32::from_bits(words[M + j]));
                }
            }
        }
        match w.run_functional(&grid) {
            Reduced::Floats(c) => {
                for (i, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                    assert!(
                        (f64::from(got) - exp).abs() < 1e-2,
                        "C[{i}]: got {got}, want {exp}"
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Compile-time check: the live state fits the 1 KB context partition.
    const _: () = assert!(LIVE_BYTES <= 1024);
    const _: () = assert!(NUM_FIELDS * 4 <= 64, "slot scratch stride is 64 B");
}
