//! `nbayes` — Naive Bayes conditional-probability counting (Table I of the
//! paper, Table II row 4).
//!
//! Records are `[year, X[0..DIMS]]` with discrete feature values
//! `X[d] ∈ [0, VALS)`. The class is derived from the year by a
//! data-dependent branch (`year > THRESHOLD`, ~30% taken — the paper's
//! 70/30 split), and each feature word increments the conditional
//! probability counter `Cprob[d][X[d]][class]` through an *indirect*,
//! data-dependent local access — the two irregularity sources the paper
//! calls out for this kernel.
//!
//! Live-state layout (per context):
//!
//! | bytes   | contents |
//! |---------|----------|
//! | 0–15    | `class[j]` scratch per record slot (j < 4) |
//! | 16–23   | `classCount[2]` |
//! | 24–151  | `Cprob[DIMS][VALS][2]` |
//! | 152–215 | `valueCount[DIMS][VALS]` (class-independent histogram) |

use crate::gen::SplitMix64;
use crate::skeleton::{emit_multi_field_kernel, R_ADDR, R_CONST8, R_FIELD, R_SLOT};
use crate::{Reduced, Workload};
use millipede_isa::reg::{r, Reg};
use millipede_isa::{AddrSpace, AluOp, CmpOp, ProgramBuilder};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid};

/// Feature dimensions per record.
pub const DIMS: usize = 4;
/// Distinct values per feature.
pub const VALS: usize = 4;
/// Years are uniform in `[0, YEAR_RANGE)`.
pub const YEAR_RANGE: u32 = 100;
/// Class-1 threshold: `year > THRESHOLD`.
pub const THRESHOLD: u32 = 70;
/// Record arity (year + features).
pub const NUM_FIELDS: usize = 1 + DIMS;

const CLASS_OFF: i32 = 0;
const CC_OFF: i32 = 16;
const CPROB_OFF: i32 = 24;
const VC_OFF: i32 = CPROB_OFF + (DIMS * VALS * 2 * 4) as i32;
/// Per-context live-state bytes.
pub const LIVE_BYTES: usize = (VC_OFF as usize) + DIMS * VALS * 4;

/// Builds the `nbayes` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(NUM_FIELDS, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| {
        let mut rec = Vec::with_capacity(NUM_FIELDS);
        rec.push(rng.below(YEAR_RANGE));
        for _ in 0..DIMS {
            rec.push(rng.below(VALS as u32));
        }
        rec
    });
    let program = emit_multi_field_kernel(
        "nbayes",
        NUM_FIELDS,
        |b| {
            b.li(R_CONST8, THRESHOLD);
        },
        Some(Box::new(|b: &mut ProgramBuilder| {
            // Year pass: derive the class with a two-sided data-dependent
            // branch (the paper's 70/30 split), count it on each side, and
            // stash it per slot.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // year
            let class0 = b.label();
            let join = b.label();
            b.li(r(11), 0);
            b.br(CmpOp::Geu, R_CONST8, r(10), class0); // thresh >= year (70%)
            b.li(r(11), 1);
            b.ld(r(14), Reg::ZERO, CC_OFF + 4, AddrSpace::Local);
            b.alui(AluOp::Add, r(14), r(14), 1);
            b.st_local(r(14), Reg::ZERO, CC_OFF + 4);
            b.jmp(join);
            b.bind(class0);
            b.ld(r(14), Reg::ZERO, CC_OFF, AddrSpace::Local);
            b.alui(AluOp::Add, r(14), r(14), 1);
            b.st_local(r(14), Reg::ZERO, CC_OFF);
            b.bind(join);
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.st_local(r(11), r(12), CLASS_OFF);
        })),
        |b| {
            // Feature pass: Cprob[d][x][class]++ with
            // byte index = (d*VALS + x)*8 + class*4.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // x
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.ld(r(11), r(12), CLASS_OFF, AddrSpace::Local); // class[j]
            b.alui(AluOp::Add, r(13), R_FIELD, -4); // d*4
            b.alui(AluOp::Sll, r(13), r(13), 2); // d*VALS*4
            b.alui(AluOp::Sll, r(14), r(10), 2); // x*4
            b.alu(AluOp::Add, r(13), r(13), r(14));
            // Class-independent per-value histogram: valueCount[d][x]++.
            b.ld(r(17), r(13), VC_OFF, AddrSpace::Local);
            b.alui(AluOp::Add, r(17), r(17), 1);
            b.st_local(r(17), r(13), VC_OFF);
            b.alui(AluOp::Sll, r(13), r(13), 1); // (d*VALS+x)*8
            b.alui(AluOp::Sll, r(15), r(11), 2); // class*4
            b.alu(AluOp::Add, r(13), r(13), r(15));
            b.ld(r(16), r(13), CPROB_OFF, AddrSpace::Local);
            b.alui(AluOp::Add, r(16), r(16), 1);
            b.st_local(r(16), r(13), CPROB_OFF);
        },
        |_| {},
    );
    Workload {
        bench: crate::Benchmark::NBayes,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// Host Reduce: `[classCount[2], Cprob[DIMS][VALS][2],
/// valueCount[DIMS][VALS]]`.
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64; 2 + DIMS * VALS * 3];
    for s in states {
        out[0] += s[(CC_OFF / 4) as usize] as i64;
        out[1] += s[(CC_OFF / 4) as usize + 1] as i64;
        for i in 0..DIMS * VALS * 2 {
            out[2 + i] += s[(CPROB_OFF / 4) as usize + i] as i64;
        }
        for i in 0..DIMS * VALS {
            out[2 + DIMS * VALS * 2 + i] += s[(VC_OFF / 4) as usize + i] as i64;
        }
    }
    Reduced::Ints(out)
}

/// Golden reference (integer accumulation — order irrelevant).
pub fn reference(w: &Workload, _grid: &ThreadGrid) -> Reduced {
    let mut out = vec![0i64; 2 + DIMS * VALS * 3];
    for rec in &w.dataset.records {
        let class = usize::from(rec[0] > THRESHOLD);
        out[class] += 1;
        for d in 0..DIMS {
            let x = rec[1 + d] as usize;
            out[2 + (d * VALS + x) * 2 + class] += 1;
            out[2 + DIMS * VALS * 2 + d * VALS + x] += 1;
        }
    }
    Reduced::Ints(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::NBayes, 2, 256, 31);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn class_split_is_roughly_70_30() {
        let w = Workload::build(Benchmark::NBayes, 4, 2048, 17);
        let grid = ThreadGrid::slab(32, 4);
        match w.run_functional(&grid) {
            Reduced::Ints(v) => {
                let total = v[0] + v[1];
                assert_eq!(total, w.dataset.num_records() as i64);
                let frac1 = v[1] as f64 / total as f64;
                assert!((0.2..0.4).contains(&frac1), "class-1 fraction {frac1}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cprob_totals_match_class_counts() {
        let w = Workload::build(Benchmark::NBayes, 2, 512, 5);
        let grid = ThreadGrid::slab(16, 4);
        match w.run_functional(&grid) {
            Reduced::Ints(v) => {
                // For each dim, sum over values of Cprob[d][*][c] equals
                // classCount[c].
                for d in 0..DIMS {
                    for c in 0..2 {
                        let s: i64 = (0..VALS).map(|x| v[2 + (d * VALS + x) * 2 + c]).sum();
                        assert_eq!(s, v[c], "dim {d} class {c}");
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Compile-time check: the live state fits the 1 KB context partition.
    const _: () = assert!(LIVE_BYTES <= 1024);
}
