//! `gda` — Gaussian discriminant analysis: per-class mean and covariance
//! accumulation (Table II row 8).
//!
//! Records are `[class, X[0..DIMS]]` where the class label (70/30 split —
//! the paper's data-dependent branch ratio) selects which of the two mean /
//! covariance accumulator sets each point updates. Heaviest benchmark in
//! Table IV: the finalize pass walks the full upper-triangular outer
//! product *and* the per-class mean for every record.
//!
//! Live-state layout (per context):
//!
//! | bytes    | contents |
//! |----------|----------|
//! | 0–15     | `class[j]` scratch (j < 4) |
//! | 16–271   | `xs[j][DIMS]` scratch, 64-B stride |
//! | 272–367  | `meansum[2][DIMS]` |
//! | 368–991  | `covsum[2][TRI]` |
//! | 992–999  | `classCount[2]` |

use crate::gen::SplitMix64;
use crate::skeleton::{emit_multi_field_kernel, mv, R_ADDR, R_FIELD, R_SLOT};
use crate::{Reduced, Workload};
use millipede_isa::reg::{r, Reg};
use millipede_isa::{AddrSpace, AluOp, CmpOp, FAluOp, ProgramBuilder};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid, ABI_RPTC};

/// Point dimensionality.
pub const DIMS: usize = 12;
/// Upper-triangle entries per class.
pub const TRI: usize = DIMS * (DIMS + 1) / 2;
/// Record arity (class + coordinates).
pub const NUM_FIELDS: usize = 1 + DIMS;
/// Probability of class 1.
pub const CLASS1_PROB: f64 = 0.30;
/// Coordinates are uniform in `[0, COORD_RANGE)`.
pub const COORD_RANGE: f32 = 100.0;

const CLS_OFF: i32 = 0;
const XS_OFF: i32 = 16;
const XS_STRIDE_LOG2: i32 = 6;
const MEAN_OFF: i32 = 272;
const COV_OFF: i32 = 368;
const CNT_OFF: i32 = 992;
/// Per-context live-state bytes (fills the whole 1 KB partition).
pub const LIVE_BYTES: usize = 1024;

/// Builds the `gda` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(NUM_FIELDS, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| {
        let mut rec = Vec::with_capacity(NUM_FIELDS);
        rec.push(u32::from(rng.chance(CLASS1_PROB)));
        for _ in 0..DIMS {
            rec.push(rng.range_f32(0.0, COORD_RANGE).to_bits());
        }
        rec
    });
    let program = emit_multi_field_kernel(
        "gda",
        NUM_FIELDS,
        |_| {},
        Some(Box::new(|b: &mut ProgramBuilder| {
            // Class pass: stash the label, count the prior with a
            // two-sided data-dependent branch (class 0 ~70%).
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // class
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.st_local(r(10), r(12), CLS_OFF);
            let cls1 = b.label();
            let done = b.label();
            b.br(CmpOp::Ne, r(10), Reg::ZERO, cls1); // 30% taken
            b.ld(r(14), Reg::ZERO, CNT_OFF, AddrSpace::Local);
            b.alui(AluOp::Add, r(14), r(14), 1);
            b.st_local(r(14), Reg::ZERO, CNT_OFF);
            b.jmp(done);
            b.bind(cls1);
            b.ld(r(14), Reg::ZERO, CNT_OFF + 4, AddrSpace::Local);
            b.alui(AluOp::Add, r(14), r(14), 1);
            b.st_local(r(14), Reg::ZERO, CNT_OFF + 4);
            b.bind(done);
        })),
        |b| {
            // Coordinate pass: stash x in the slot's scratch row.
            // Scratch byte = XS_OFF + j*64 + (field-1)*4 = (XS_OFF-4) + j*64
            // + R_FIELD.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input);
            b.alui(AluOp::Sll, r(12), R_SLOT, XS_STRIDE_LOG2);
            b.alu(AluOp::Add, r(12), r(12), R_FIELD);
            b.st_local(r(10), r(12), XS_OFF - 4);
        },
        |b| {
            // Per slot: select the class's accumulator set, then fold the
            // point into its mean sums and upper-triangular covariance.
            b.li(R_SLOT, 0);
            let sloop = b.label();
            b.bind(sloop);
            b.alui(AluOp::Sll, r(13), R_SLOT, 2);
            b.ld(r(11), r(13), CLS_OFF, AddrSpace::Local); // class
                                                           // mean pointer: MEAN_OFF + class*DIMS*4
            b.alui(AluOp::Mul, r(15), r(11), (DIMS * 4) as i32);
            b.alui(AluOp::Add, r(15), r(15), MEAN_OFF);
            // cov pointer: COV_OFF + class*TRI*4
            b.alui(AluOp::Mul, r(20), r(11), (TRI * 4) as i32);
            b.alui(AluOp::Add, r(20), r(20), COV_OFF);
            // xi pointer and end
            b.alui(AluOp::Sll, r(12), R_SLOT, XS_STRIDE_LOG2);
            b.alui(AluOp::Add, r(18), r(12), XS_OFF);
            b.alui(AluOp::Add, r(24), r(18), (DIMS * 4) as i32);
            let iloop = b.label();
            b.bind(iloop);
            b.ld(r(17), r(18), 0, AddrSpace::Local); // xi
            b.ld(r(16), r(15), 0, AddrSpace::Local); // meansum
            b.falu(FAluOp::Fadd, r(16), r(16), r(17));
            b.st_local(r(16), r(15), 0);
            b.alui(AluOp::Add, r(15), r(15), 4);
            mv(b, r(19), r(18)); // xj pointer
            let jloop = b.label();
            b.bind(jloop);
            b.ld(r(21), r(19), 0, AddrSpace::Local); // xj
            b.falu(FAluOp::Fmul, r(21), r(21), r(17));
            b.ld(r(22), r(20), 0, AddrSpace::Local);
            b.falu(FAluOp::Fadd, r(22), r(22), r(21));
            b.st_local(r(22), r(20), 0);
            b.alui(AluOp::Add, r(19), r(19), 4);
            b.alui(AluOp::Add, r(20), r(20), 4);
            b.br(CmpOp::Lt, r(19), r(24), jloop);
            b.alui(AluOp::Add, r(18), r(18), 4);
            b.br(CmpOp::Lt, r(18), r(24), iloop);
            b.alui(AluOp::Add, R_SLOT, R_SLOT, 1);
            b.br(CmpOp::Lt, R_SLOT, ABI_RPTC, sloop);
        },
    );
    Workload {
        bench: crate::Benchmark::Gda,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// Host Reduce: class counts (ints) and `[meansum[2][DIMS],
/// covsum[2][TRI]]` (`f32`, folded in thread order).
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut ints = vec![0i64; 2];
    let mut floats = vec![0.0f32; 2 * DIMS + 2 * TRI];
    for s in states {
        ints[0] += s[(CNT_OFF / 4) as usize] as i64;
        ints[1] += s[(CNT_OFF / 4) as usize + 1] as i64;
        for i in 0..2 * DIMS {
            floats[i] += f32::from_bits(s[(MEAN_OFF / 4) as usize + i]);
        }
        for i in 0..2 * TRI {
            floats[2 * DIMS + i] += f32::from_bits(s[(COV_OFF / 4) as usize + i]);
        }
    }
    Reduced::Mixed { ints, floats }
}

/// Golden reference, replaying per-thread visit order and pair order.
pub fn reference(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut ints = vec![0i64; 2];
    let mut floats = vec![0.0f32; 2 * DIMS + 2 * TRI];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let mut mean = [0.0f32; 2 * DIMS];
            let mut cov = vec![0.0f32; 2 * TRI];
            for rec in grid.records_of_thread(layout, corelet, context) {
                let record = &w.dataset.records[rec];
                let class = record[0] as usize;
                ints[class] += 1;
                let xs: Vec<f32> = record[1..].iter().map(|&b| f32::from_bits(b)).collect();
                let mut idx = 0;
                for i in 0..DIMS {
                    mean[class * DIMS + i] += xs[i];
                    for j in i..DIMS {
                        cov[class * TRI + idx] += xs[i] * xs[j];
                        idx += 1;
                    }
                }
            }
            for i in 0..2 * DIMS {
                floats[i] += mean[i];
            }
            for i in 0..2 * TRI {
                floats[2 * DIMS + i] += cov[i];
            }
        }
    }
    Reduced::Mixed { ints, floats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::Gda, 2, 256, 71);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn class_priors_are_70_30() {
        let w = Workload::build(Benchmark::Gda, 2, 2048, 29);
        let grid = ThreadGrid::slab(32, 4);
        match w.run_functional(&grid) {
            Reduced::Mixed { ints, .. } => {
                let total = ints[0] + ints[1];
                assert_eq!(total, w.dataset.num_records() as i64);
                let frac1 = ints[1] as f64 / total as f64;
                assert!((0.22..0.38).contains(&frac1), "class-1 fraction {frac1}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn per_class_means_are_near_center() {
        let w = Workload::build(Benchmark::Gda, 4, 2048, 37);
        let grid = ThreadGrid::slab(32, 4);
        match w.run_functional(&grid) {
            Reduced::Mixed { ints, floats } => {
                for class in 0..2 {
                    let n = ints[class] as f32;
                    for d in 0..DIMS {
                        let m = floats[class * DIMS + d] / n;
                        assert!((40.0..60.0).contains(&m), "class {class} dim {d}: {m}");
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn live_layout_exactly_fills_partition() {
        assert_eq!(LIVE_BYTES, 1024);
        assert_eq!(CNT_OFF as usize + 8, 1000);
        assert!(COV_OFF as usize + 2 * TRI * 4 <= CNT_OFF as usize);
    }
}
