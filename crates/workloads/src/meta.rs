//! Table II metadata: the application-behaviour summary.

use crate::Benchmark;

/// One row of the paper's Table II ("Summary of application behavior").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchMeta {
    /// The benchmark.
    pub bench: Benchmark,
    /// Input record description (Table II column 2).
    pub input_record: &'static str,
    /// Per-node live state description (column 3).
    pub live_state: &'static str,
    /// Operations per byte (column 4).
    pub ops_per_byte: &'static str,
    /// Record arity in this reproduction (4-byte fields per record).
    pub num_fields: usize,
    /// Whether the kernel's inner arithmetic is floating point.
    pub float: bool,
}

/// Table II, one row per benchmark.
pub const TABLE_II: [BenchMeta; 8] = [
    BenchMeta {
        bench: Benchmark::Count,
        input_record: "Movie rating",
        live_state: "Bin count",
        ops_per_byte: "O(1)",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Sample,
        input_record: "Movie rating",
        live_state: "(count, elements) per bin",
        ops_per_byte: "O(1)",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Variance,
        input_record: "Movie rating",
        live_state: "Bin count, bin sum of squares",
        ops_per_byte: "O(1)",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::NBayes,
        input_record: "N-dim. point + Bin-id",
        live_state: "Conditional probability per bin",
        ops_per_byte: "O(1)",
        num_fields: crate::nbayes::NUM_FIELDS,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Classify,
        input_record: "N-dim. point",
        live_state: "N-dim. centroids",
        ops_per_byte: "O(k) - nearest centroid",
        num_fields: crate::classify::DIMS,
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Kmeans,
        input_record: "N-dim. point",
        live_state: "Mean and counts per cluster",
        ops_per_byte: "O(1) - mean, O(k) - assignment",
        num_fields: crate::classify::DIMS, // kmeans shares classify's record type
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Pca,
        input_record: "N-dim. point",
        live_state: "Mean, covariance",
        ops_per_byte: "O(N) - covariance",
        num_fields: crate::pca::DIMS,
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Gda,
        input_record: "N-dim. point + Bin-id",
        live_state: "Per-class mean, covariance",
        ops_per_byte: "O(N) - covariance",
        num_fields: crate::gda::NUM_FIELDS,
        float: true,
    },
];

/// Looks up a benchmark's Table II row.
pub fn meta(bench: Benchmark) -> &'static BenchMeta {
    TABLE_II
        .iter()
        .find(|m| m.bench == bench)
        .expect("every benchmark has a Table II row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_metadata() {
        for b in Benchmark::ALL {
            assert_eq!(meta(b).bench, b);
        }
    }

    #[test]
    fn arities_match_built_workloads() {
        for m in &TABLE_II {
            let w = crate::Workload::build(m.bench, 1, 256, 1);
            assert_eq!(
                w.dataset.layout.num_fields,
                m.num_fields,
                "{}",
                m.bench.name()
            );
        }
    }
}
