//! Benchmark metadata: the paper's Table II application-behaviour summary
//! ([`TABLE_II`]) extended with equivalent rows for the graph-analytics
//! and dense-kernel families ([`EXTENDED`]); [`meta`] covers every
//! compiled-in benchmark.

use crate::Benchmark;

/// One row of the paper's Table II ("Summary of application behavior").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchMeta {
    /// The benchmark.
    pub bench: Benchmark,
    /// Input record description (Table II column 2).
    pub input_record: &'static str,
    /// Per-node live state description (column 3).
    pub live_state: &'static str,
    /// Operations per byte (column 4).
    pub ops_per_byte: &'static str,
    /// Record arity in this reproduction (4-byte fields per record).
    pub num_fields: usize,
    /// Whether the kernel's inner arithmetic is floating point.
    pub float: bool,
}

/// Table II, one row per benchmark.
pub const TABLE_II: [BenchMeta; 8] = [
    BenchMeta {
        bench: Benchmark::Count,
        input_record: "Movie rating",
        live_state: "Bin count",
        ops_per_byte: "O(1)",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Sample,
        input_record: "Movie rating",
        live_state: "(count, elements) per bin",
        ops_per_byte: "O(1)",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Variance,
        input_record: "Movie rating",
        live_state: "Bin count, bin sum of squares",
        ops_per_byte: "O(1)",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::NBayes,
        input_record: "N-dim. point + Bin-id",
        live_state: "Conditional probability per bin",
        ops_per_byte: "O(1)",
        num_fields: crate::nbayes::NUM_FIELDS,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Classify,
        input_record: "N-dim. point",
        live_state: "N-dim. centroids",
        ops_per_byte: "O(k) - nearest centroid",
        num_fields: crate::classify::DIMS,
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Kmeans,
        input_record: "N-dim. point",
        live_state: "Mean and counts per cluster",
        ops_per_byte: "O(1) - mean, O(k) - assignment",
        num_fields: crate::classify::DIMS, // kmeans shares classify's record type
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Pca,
        input_record: "N-dim. point",
        live_state: "Mean, covariance",
        ops_per_byte: "O(N) - covariance",
        num_fields: crate::pca::DIMS,
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Gda,
        input_record: "N-dim. point + Bin-id",
        live_state: "Per-class mean, covariance",
        ops_per_byte: "O(N) - covariance",
        num_fields: crate::gda::NUM_FIELDS,
        float: true,
    },
];

/// Metadata rows for the non-paper families, in `Benchmark::ALL` order.
pub const EXTENDED: [BenchMeta; 6] = [
    BenchMeta {
        bench: Benchmark::Pagerank,
        input_record: "Edge (src, dst)",
        live_state: "Contribution table, rank accumulator",
        ops_per_byte: "O(1) - indexed push",
        num_fields: crate::pagerank::NUM_FIELDS,
        float: true,
    },
    BenchMeta {
        bench: Benchmark::Bfs,
        input_record: "Edge (src, dst)",
        live_state: "Distance table, frontier targets",
        ops_per_byte: "O(1) - relaxation",
        num_fields: crate::bfs::NUM_FIELDS,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Gemm,
        input_record: "A column + B row (k-slice)",
        live_state: "M x N output tile",
        ops_per_byte: "O(M*N) - rank-1 update",
        num_fields: crate::gemm::NUM_FIELDS,
        float: true,
    },
    BenchMeta {
        bench: Benchmark::StreamAdd,
        input_record: "Operand pair (a, b)",
        live_state: "Running sum, XOR checksum",
        ops_per_byte: "O(1) - add",
        num_fields: 2,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Reduction,
        input_record: "Scalar",
        live_state: "Sum, min, max",
        ops_per_byte: "O(1) - fold",
        num_fields: 1,
        float: false,
    },
    BenchMeta {
        bench: Benchmark::Scan,
        input_record: "Scalar",
        live_state: "Prefix value, prefix checksum",
        ops_per_byte: "O(1) - prefix",
        num_fields: 1,
        float: false,
    },
];

/// Looks up a benchmark's metadata row (Table II for the BMLAs,
/// [`EXTENDED`] for the other families).
pub fn meta(bench: Benchmark) -> &'static BenchMeta {
    TABLE_II
        .iter()
        .chain(EXTENDED.iter())
        .find(|m| m.bench == bench)
        .expect("every benchmark has a metadata row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_metadata() {
        for b in Benchmark::ALL {
            assert_eq!(meta(b).bench, b);
        }
    }

    #[test]
    fn arities_match_built_workloads() {
        for m in TABLE_II.iter().chain(EXTENDED.iter()) {
            let w = crate::Workload::build(m.bench, 1, 256, 1);
            assert_eq!(
                w.dataset.layout.num_fields,
                m.num_fields,
                "{}",
                m.bench.name()
            );
        }
    }

    #[test]
    fn table_ii_is_exactly_the_bmla_set() {
        assert_eq!(
            TABLE_II.map(|m| m.bench),
            Benchmark::BMLA,
            "Table II rows must stay the paper's eight, in order"
        );
        assert_eq!(
            EXTENDED.map(|m| m.bench).to_vec(),
            Benchmark::GRAPH
                .iter()
                .chain(Benchmark::DENSE.iter())
                .copied()
                .collect::<Vec<_>>()
        );
    }
}
