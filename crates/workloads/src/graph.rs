//! Deterministic synthetic-graph generator with a CSR edge layout.
//!
//! The graph workloads (`pagerank`, `bfs`) need an adversarially
//! *irregular* access pattern without breaking the simulators' row-dense
//! input-streaming contract (DESIGN.md, "Flow control"): the dataset is
//! therefore the **edge list in CSR order** — source-sorted `(src, dst)`
//! records streamed sequentially like any other benchmark — while the
//! irregularity lands where it architecturally matters for a PNM corelet:
//! data-dependent *indexed local-memory accesses* (`rank[src]`,
//! `dist[dst]`) and *divergent data-dependent branches* (frontier
//! membership, hub classification). This mirrors Tesseract-style graph
//! PIM kernels, where the vertex state is the random-access working set
//! and the edge stream is sequential.
//!
//! Degrees are deliberately skewed (each edge samples its source as the
//! *minimum* of two uniform draws, so low-numbered vertices act as hubs)
//! because degree skew is what creates cross-corelet work imbalance — the
//! flow-control stress case — and warp divergence on the SIMT baselines.
//!
//! Everything is generated from the in-repo [`SplitMix64`] stream, so
//! datasets are bit-reproducible across platforms; the golden digests and
//! the property suite (`tests/proptest_invariants.rs`) rely on that.

use crate::gen::SplitMix64;

/// Level sentinel for vertices not yet reached by [`SynthGraph::bfs_levels`].
pub const UNREACHED: u32 = 0x7fff_ffff;

/// A deterministic directed multigraph in CSR (source-sorted) edge order.
#[derive(Debug, Clone)]
pub struct SynthGraph {
    /// Vertex count.
    pub num_vertices: usize,
    /// Edges sorted by source (generation order preserved within a
    /// source); `edges.len()` is exactly the requested edge count.
    pub edges: Vec<(u32, u32)>,
    /// CSR row pointer: the edges of vertex `v` are
    /// `edges[row_ptr[v] as usize .. row_ptr[v + 1] as usize]`.
    pub row_ptr: Vec<u32>,
}

impl SynthGraph {
    /// Generates a graph with `num_vertices` vertices and exactly
    /// `num_edges` edges from `seed`.
    ///
    /// Each edge draws its source as `min(u, u')` of two uniform draws
    /// (quadratic skew toward low vertex ids — the hubs) and its
    /// destination uniformly among the *other* vertices (no self-loops).
    /// Parallel edges are allowed, as in real edge streams.
    ///
    /// # Panics
    ///
    /// Panics when `num_vertices < 2` (destinations must have somewhere
    /// to go).
    pub fn generate(num_vertices: usize, num_edges: usize, seed: u64) -> SynthGraph {
        assert!(num_vertices >= 2, "need at least 2 vertices");
        let v = num_vertices as u32;
        let mut rng = SplitMix64::new(seed);
        let mut edges: Vec<(u32, u32)> = (0..num_edges)
            .map(|_| {
                let src = rng.below(v).min(rng.below(v));
                let dst = (src + 1 + rng.below(v - 1)) % v;
                (src, dst)
            })
            .collect();
        // Stable: edges of one source keep their generation order, so the
        // layout is a pure function of (num_vertices, num_edges, seed).
        edges.sort_by_key(|&(src, _)| src);
        let mut row_ptr = vec![0u32; num_vertices + 1];
        for &(src, _) in &edges {
            row_ptr[src as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            row_ptr[i + 1] += row_ptr[i];
        }
        SynthGraph {
            num_vertices,
            edges,
            row_ptr,
        }
    }

    /// Edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: usize) -> u32 {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Checks CSR well-formedness; returns every violated invariant (empty
    /// means well-formed). The property suite drives this over randomized
    /// sizes and seeds.
    pub fn check_csr(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.row_ptr.len() != self.num_vertices + 1 {
            problems.push(format!(
                "row_ptr has {} entries for {} vertices",
                self.row_ptr.len(),
                self.num_vertices
            ));
        }
        if self.row_ptr.first() != Some(&0) {
            problems.push("row_ptr[0] != 0".to_string());
        }
        if self.row_ptr.last().copied() != Some(self.edges.len() as u32) {
            problems.push("row_ptr does not end at the edge count".to_string());
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            problems.push("row_ptr not monotone".to_string());
        }
        for (i, &(src, dst)) in self.edges.iter().enumerate() {
            if src as usize >= self.num_vertices || dst as usize >= self.num_vertices {
                problems.push(format!("edge {i} ({src} -> {dst}) out of range"));
            }
            if src == dst {
                problems.push(format!("edge {i} is a self-loop at {src}"));
            }
        }
        if self.edges.windows(2).any(|w| w[0].0 > w[1].0) {
            problems.push("edges not sorted by source".to_string());
        }
        for v in 0..self.num_vertices {
            let (lo, hi) = (self.row_ptr[v] as usize, self.row_ptr[v + 1] as usize);
            if self.edges[lo..hi].iter().any(|&(src, _)| src as usize != v) {
                problems.push(format!(
                    "row_ptr slice of vertex {v} contains foreign edges"
                ));
            }
        }
        problems
    }

    /// Breadth-first levels from `root`, following edge direction.
    /// Vertices farther than `max_level` (or unreachable) get
    /// [`UNREACHED`] — a deliberately *partial* frontier, so one
    /// relaxation sweep over it has a realistic mix of frontier and
    /// non-frontier sources.
    pub fn bfs_levels(&self, root: usize, max_level: u32) -> Vec<u32> {
        let mut level = vec![UNREACHED; self.num_vertices];
        level[root] = 0;
        let mut frontier = vec![root];
        let mut depth = 0;
        while !frontier.is_empty() && depth < max_level {
            depth += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                let (lo, hi) = (self.row_ptr[v] as usize, self.row_ptr[v + 1] as usize);
                for &(_, dst) in &self.edges[lo..hi] {
                    if level[dst as usize] == UNREACHED {
                        level[dst as usize] = depth;
                        next.push(dst as usize);
                    }
                }
            }
            frontier = next;
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_well_formed() {
        for (v, e, seed) in [(8, 32, 1), (64, 2048, 7), (16, 100, 42)] {
            let g = SynthGraph::generate(v, e, seed);
            assert_eq!(g.num_edges(), e);
            let problems = g.check_csr();
            assert!(problems.is_empty(), "{problems:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthGraph::generate(64, 512, 9);
        let b = SynthGraph::generate(64, 512, 9);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.row_ptr, b.row_ptr);
        let c = SynthGraph::generate(64, 512, 10);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn degrees_are_skewed_toward_low_vertices() {
        let g = SynthGraph::generate(64, 4096, 3);
        let low: u32 = (0..16).map(|v| g.out_degree(v)).sum();
        let high: u32 = (48..64).map(|v| g.out_degree(v)).sum();
        // min-of-two-uniforms gives the lowest quartile ~7/16 of the mass
        // and the highest ~1/16.
        assert!(low > 3 * high, "low {low} vs high {high}");
    }

    #[test]
    fn degrees_match_row_ptr() {
        let g = SynthGraph::generate(32, 777, 5);
        let total: u32 = (0..32).map(|v| g.out_degree(v)).sum();
        assert_eq!(total as usize, g.num_edges());
    }

    #[test]
    fn bfs_levels_respect_edges_and_cap() {
        let g = SynthGraph::generate(64, 128, 11);
        let level = g.bfs_levels(0, 2);
        assert_eq!(level[0], 0);
        assert!(level.iter().all(|&l| l == UNREACHED || l <= 2));
        // Every reached non-root vertex has an in-edge from one level up.
        for v in 0..g.num_vertices {
            if level[v] != UNREACHED && level[v] > 0 {
                assert!(
                    g.edges
                        .iter()
                        .any(|&(s, d)| d as usize == v && level[s as usize] == level[v] - 1),
                    "vertex {v} at level {} has no predecessor",
                    level[v]
                );
            }
        }
        // A capped frontier on a hub-skewed graph leaves some vertices out.
        assert!(level.contains(&UNREACHED));
    }
}
