//! `bfs` — one frontier-relaxation sweep of breadth-first search over a
//! synthetic CSR edge stream (graph-analytics family; not in the paper).
//!
//! Records are `(src, dst)` edges in CSR order over the same hub-skewed
//! [`SynthGraph`](crate::graph::SynthGraph) as `pagerank`. The host
//! preloads `dist[v]` with a deliberately *partial* BFS from vertex 0
//! (levels beyond [`FRONTIER_LEVEL`] stay [`UNREACHED`]) and `next[v]`
//! with the sentinel; the kernel performs one edge-parallel relaxation:
//!
//! ```text
//! if dist[src] != UNREACHED { next[dst] = min(next[dst], dist[src]+1) }
//! ```
//!
//! The frontier check is a *divergent data-dependent branch* (whether an
//! edge does any work depends on graph structure, the classic BFS
//! irregularity), and both vertex-table accesses are data-dependent
//! indexed local loads. `min` makes the per-vertex result
//! order-independent, so the golden reference needs no visit-order
//! replay — but the cross-thread combine is elementwise *minimum*, the
//! second benchmark (after `sample`) whose cluster-level Reduce is not a
//! plain sum.
//!
//! Live-state layout (per context):
//!
//! | bytes   | contents |
//! |---------|----------|
//! | 0–15    | `src[j]` scratch per record slot (j < 4) |
//! | 16–23   | `relaxed`, `skipped` edge counters |
//! | 24–279  | `dist[VERTICES]` (preloaded partial BFS) |
//! | 280–535 | `next[VERTICES]` (relaxation target, preloaded sentinel) |

use crate::graph::{SynthGraph, UNREACHED};
use crate::skeleton::{emit_multi_field_kernel, R_ADDR, R_CONST8, R_SLOT};
use crate::{Reduced, Workload};
use millipede_isa::reg::{r, Reg};
use millipede_isa::{AddrSpace, AluOp, CmpOp, ProgramBuilder};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid};

/// Vertex count (shared with `pagerank`).
pub const VERTICES: usize = 64;
/// The preloaded BFS stops at this level; deeper vertices stay
/// [`UNREACHED`], so the sweep sees a realistic frontier mix.
pub const FRONTIER_LEVEL: u32 = 1;
/// Record arity: `(src, dst)`.
pub const NUM_FIELDS: usize = 2;

const SRC_OFF: i32 = 0;
const CNT_OFF: i32 = 16;
const DIST_OFF: i32 = 24;
const NEXT_OFF: i32 = DIST_OFF + (VERTICES * 4) as i32;
/// Per-context live-state bytes.
pub const LIVE_BYTES: usize = NEXT_OFF as usize + VERTICES * 4;

/// The synthetic graph behind a `bfs` dataset of `num_records` edges.
pub fn graph_for(num_records: usize, seed: u64) -> SynthGraph {
    SynthGraph::generate(VERTICES, num_records, seed)
}

/// Builds the `bfs` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(NUM_FIELDS, row_bytes, num_chunks);
    let g = graph_for(layout.num_records(), seed);
    let dataset = Dataset::new(layout, g.edges.iter().map(|&(s, d)| vec![s, d]).collect());
    let dist = g.bfs_levels(0, FRONTIER_LEVEL);
    let mut live_init: Vec<(u64, u32)> = Vec::with_capacity(2 * VERTICES);
    for v in 0..VERTICES {
        live_init.push((DIST_OFF as u64 + 4 * v as u64, dist[v]));
        live_init.push((NEXT_OFF as u64 + 4 * v as u64, UNREACHED));
    }
    let mask = (VERTICES - 1) as i32;
    let program = emit_multi_field_kernel(
        "bfs",
        NUM_FIELDS,
        |b| {
            b.li(R_CONST8, UNREACHED);
        },
        Some(Box::new(move |b: &mut ProgramBuilder| {
            // Source pass: stash the (masked) source vertex per slot.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // src
            b.alui(AluOp::And, r(10), r(10), mask);
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.st_local(r(10), r(12), SRC_OFF);
        })),
        move |b| {
            // Destination pass: relax the edge if its source is on the
            // frontier — the divergent branch both sides of which do work.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // dst
            b.alui(AluOp::And, r(10), r(10), mask);
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.ld(r(11), r(12), SRC_OFF, AddrSpace::Local); // src[j]
            b.alui(AluOp::Sll, r(13), r(11), 2); // src*4
            b.ld(r(14), r(13), DIST_OFF, AddrSpace::Local); // dist[src]
            let skip = b.label();
            let join = b.label();
            b.br(CmpOp::Eq, r(14), R_CONST8, skip); // src unreached
            b.alui(AluOp::Add, r(14), r(14), 1); // dist[src]+1
            b.alui(AluOp::Sll, r(15), r(10), 2); // dst*4
            b.ld(r(16), r(15), NEXT_OFF, AddrSpace::Local);
            b.alu(AluOp::Min, r(16), r(16), r(14));
            b.st_local(r(16), r(15), NEXT_OFF);
            b.ld(r(17), Reg::ZERO, CNT_OFF, AddrSpace::Local);
            b.alui(AluOp::Add, r(17), r(17), 1);
            b.st_local(r(17), Reg::ZERO, CNT_OFF); // relaxed++
            b.jmp(join);
            b.bind(skip);
            b.ld(r(17), Reg::ZERO, CNT_OFF + 4, AddrSpace::Local);
            b.alui(AluOp::Add, r(17), r(17), 1);
            b.st_local(r(17), Reg::ZERO, CNT_OFF + 4); // skipped++
            b.bind(join);
        },
        |_| {},
    );
    Workload {
        bench: crate::Benchmark::Bfs,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init,
    }
}

/// Host Reduce: `[relaxed, skipped, next[VERTICES]]` — counters sum,
/// the per-vertex relaxation targets combine by elementwise minimum.
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64; 2 + VERTICES];
    for v in 0..VERTICES {
        out[2 + v] = i64::from(UNREACHED);
    }
    for s in states {
        out[0] += s[(CNT_OFF / 4) as usize] as i64;
        out[1] += s[(CNT_OFF / 4) as usize + 1] as i64;
        for v in 0..VERTICES {
            out[2 + v] = out[2 + v].min(s[(NEXT_OFF / 4) as usize + v] as i64);
        }
    }
    Reduced::Ints(out)
}

/// Golden reference. `min` is order-independent, so no per-thread replay
/// is needed — any partition of the edges yields the same minima.
pub fn reference(w: &Workload, _grid: &ThreadGrid) -> Reduced {
    let dist: Vec<u32> = (0..VERTICES)
        .map(|v| {
            w.live_init
                .iter()
                .find(|&&(a, _)| a == DIST_OFF as u64 + 4 * v as u64)
                .map_or(UNREACHED, |&(_, d)| d)
        })
        .collect();
    let mut out = vec![0i64; 2 + VERTICES];
    for v in 0..VERTICES {
        out[2 + v] = i64::from(UNREACHED);
    }
    for rec in &w.dataset.records {
        let src = rec[0] as usize & (VERTICES - 1);
        let dst = rec[1] as usize & (VERTICES - 1);
        if dist[src] == UNREACHED {
            out[1] += 1;
        } else {
            out[0] += 1;
            out[2 + dst] = out[2 + dst].min(i64::from(dist[src] + 1));
        }
    }
    Reduced::Ints(out)
}

/// Cluster-level combine: counters add, the relaxation targets combine by
/// minimum, mirroring [`reduce`].
pub fn combine(outputs: &[crate::Reduced]) -> crate::Reduced {
    let mut acc = match &outputs[0] {
        crate::Reduced::Ints(v) => v.clone(),
        other => panic!("bfs output must be Ints, got {other:?}"),
    };
    for out in &outputs[1..] {
        let crate::Reduced::Ints(v) = out else {
            panic!("bfs output must be Ints");
        };
        assert_eq!(v.len(), acc.len());
        for (i, (x, y)) in acc.iter_mut().zip(v).enumerate() {
            if i < 2 {
                *x += y;
            } else {
                *x = (*x).min(*y);
            }
        }
    }
    crate::Reduced::Ints(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::Bfs, 3, 256, 19);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn functional_matches_reference_on_coalesced_grids() {
        let w = Workload::build(Benchmark::Bfs, 2, 512, 3);
        for grid in [
            ThreadGrid::coalesced(16, 4),
            ThreadGrid::block_columns(16, 4),
        ] {
            assert_eq!(w.run_functional(&grid), w.reference(&grid));
        }
    }

    #[test]
    fn one_sweep_discovers_exactly_the_next_level() {
        let w = Workload::build(Benchmark::Bfs, 4, 2048, 29);
        let g = graph_for(w.dataset.num_records(), 29);
        let dist = g.bfs_levels(0, FRONTIER_LEVEL);
        let full = g.bfs_levels(0, FRONTIER_LEVEL + 1);
        let grid = ThreadGrid::slab(32, 4);
        match w.run_functional(&grid) {
            Reduced::Ints(out) => {
                assert_eq!(out[0] + out[1], w.dataset.num_records() as i64);
                // Both branch sides actually run.
                assert!(out[0] > 0, "no edge relaxed");
                assert!(out[1] > 0, "no edge skipped");
                for v in 0..VERTICES {
                    let next = out[2 + v];
                    // next[v] is the best one-step relaxation: the true
                    // level when the full BFS reaches v one level deeper,
                    // never better than the truth, and UNREACHED when no
                    // frontier edge touches v.
                    if next != i64::from(UNREACHED) {
                        assert!(
                            next >= i64::from(full[v]),
                            "vertex {v}: relaxed below the true level"
                        );
                        assert!(next <= i64::from(FRONTIER_LEVEL) + 1);
                    }
                    if dist[v] != UNREACHED {
                        // Already-reached vertices with an in-edge from the
                        // frontier still get relaxed; unreached-and-
                        // untouched ones stay at the sentinel.
                        continue;
                    }
                    if full[v] == FRONTIER_LEVEL + 1 {
                        assert_eq!(
                            next,
                            i64::from(full[v]),
                            "vertex {v} should be discovered this sweep"
                        );
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sharded_outputs_combine_to_the_full_reference() {
        let grid = ThreadGrid::slab(8, 4);
        let w = Workload::build(Benchmark::Bfs, 4, 256, 9);
        let outs: Vec<Reduced> = w.shard(2).iter().map(|s| s.run_functional(&grid)).collect();
        assert_eq!(
            crate::combine_outputs(Benchmark::Bfs, &outs),
            w.reference(&grid)
        );
    }

    // Compile-time check: the live state fits the 1 KB context partition.
    const _: () = assert!(LIVE_BYTES <= 1024);
    const _: () = assert!(VERTICES.is_power_of_two());
}
