//! `count` — histogram of movie ratings via a comparison tree (Table II
//! row 1).
//!
//! The lightest benchmark (Table IV: fewest instructions per input word,
//! highest branch frequency). Each record is a single rating word; the Map
//! classifies it into one of [`NUM_BINS`] equal ranges down a three-level
//! tree of data-dependent compare-and-branch instructions, then bumps that
//! bin's counter. The paper notes this very implementation choice:
//! "replacing the indirect accesses with if-then-else constructs, to
//! increment the appropriate counters, would lead to more control-flow
//! irregularity" (§III-A) — on a MIMD corelet each record walks *one* path
//! (constant cost), while a 32-wide SIMT warp's threads scatter across all
//! eight leaves and serialize, which is exactly the left-edge behaviour of
//! Fig. 3.
//!
//! Live-state layout (per context): `bins[8]` counters at bytes 0–31.

use crate::gen::SplitMix64;
use crate::skeleton::{emit_single_field_kernel, emit_single_field_kernel_sync, R_ADDR};
use crate::{Reduced, Workload};
use millipede_isa::reg::{r, Reg};
use millipede_isa::{AddrSpace, AluOp, CmpOp, Label, ProgramBuilder};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid};

/// Histogram bins (ranges of `RATING_RANGE / NUM_BINS`).
pub const NUM_BINS: usize = 8;
/// Ratings are uniform in `[0, RATING_RANGE)`.
pub const RATING_RANGE: u32 = 256;
/// Per-context live-state bytes.
pub const LIVE_BYTES: usize = 64;

/// Recursively emits the compare tree over bins `[lo, hi)`; the rating sits
/// in `r10`, `r13` is the comparison scratch register, and `join` is the
/// common exit.
fn emit_tree(b: &mut ProgramBuilder, lo: usize, hi: usize, join: Label) {
    if hi - lo == 1 {
        // Leaf: bins[lo]++.
        let off = (lo * 4) as i32;
        b.ld(r(12), Reg::ZERO, off, AddrSpace::Local);
        b.alui(AluOp::Add, r(12), r(12), 1);
        b.st_local(r(12), Reg::ZERO, off);
        if lo != 0 {
            // Bin 0 is emitted last and falls through to `join`.
            b.jmp(join);
        }
        return;
    }
    let mid = (lo + hi) / 2;
    let threshold = (RATING_RANGE as usize / NUM_BINS * mid) as u32;
    let lower = b.label();
    b.li(r(13), threshold);
    b.br(CmpOp::Ltu, r(10), r(13), lower);
    emit_tree(b, mid, hi, join);
    b.bind(lower);
    emit_tree(b, lo, mid, join);
}

/// Builds the `count` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    build_inner(num_chunks, row_bytes, seed, false)
}

/// Builds `count` with a software barrier after every record — §IV-C's
/// alternative to hardware flow control (used by the ablation experiment).
pub fn build_with_barriers(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    build_inner(num_chunks, row_bytes, seed, true)
}

fn build_inner(num_chunks: usize, row_bytes: u64, seed: u64, barriers: bool) -> Workload {
    let layout = InterleavedLayout::new(1, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| vec![rng.below(RATING_RANGE)]);
    let body = |b: &mut ProgramBuilder| {
        b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // rating
        let join = b.label();
        emit_tree(b, 0, NUM_BINS, join);
        b.bind(join);
    };
    let program = if barriers {
        emit_single_field_kernel_sync("count-barriers", |_| {}, body, true)
    } else {
        emit_single_field_kernel("count", |_| {}, body)
    };
    Workload {
        bench: crate::Benchmark::Count,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// Host Reduce: sum each bin over all thread states.
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64; NUM_BINS];
    for s in states {
        for bin in 0..NUM_BINS {
            out[bin] += s[bin] as i64;
        }
    }
    Reduced::Ints(out)
}

/// Golden reference (integer outputs — visit order is irrelevant).
pub fn reference(w: &Workload, _grid: &ThreadGrid) -> Reduced {
    let width = RATING_RANGE as usize / NUM_BINS;
    let mut out = vec![0i64; NUM_BINS];
    for rec in &w.dataset.records {
        out[(rec[0] as usize / width).min(NUM_BINS - 1)] += 1;
    }
    Reduced::Ints(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::Count, 2, 256, 1);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn bins_sum_to_record_count_and_are_balanced() {
        let w = Workload::build(Benchmark::Count, 3, 2048, 7);
        let grid = ThreadGrid::slab(16, 4);
        match w.run_functional(&grid) {
            Reduced::Ints(v) => {
                let total: i64 = v.iter().sum();
                assert_eq!(total, w.dataset.num_records() as i64);
                // Uniform ratings → every eighth roughly equal.
                let expect = total as f64 / NUM_BINS as f64;
                for (bin, &n) in v.iter().enumerate() {
                    let dev = (n as f64 - expect).abs() / expect;
                    assert!(dev < 0.35, "bin {bin}: {n} vs {expect}");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tree_covers_every_rating() {
        // Boundary ratings land in exactly the reference bin.
        let width = RATING_RANGE as usize / NUM_BINS;
        for rating in [0u32, 31, 32, 63, 64, 127, 128, 191, 192, 255] {
            let layout = InterleavedLayout::new(1, 64, 1);
            let dataset = Dataset::new(layout, vec![vec![rating]; 16]);
            let base = Workload::build(Benchmark::Count, 1, 64, 0);
            let w = Workload { dataset, ..base };
            let grid = ThreadGrid::slab(4, 4);
            match w.run_functional(&grid) {
                Reduced::Ints(v) => {
                    let bin = rating as usize / width;
                    assert_eq!(v[bin], 16, "rating {rating} → bin {bin}: {v:?}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = Workload::build(Benchmark::Count, 2, 256, 5);
        let b = Workload::build(Benchmark::Count, 2, 256, 5);
        assert_eq!(a.dataset.records, b.dataset.records);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = Workload::build(Benchmark::Count, 2, 256, 5);
        let b = Workload::build(Benchmark::Count, 2, 256, 6);
        assert_ne!(a.dataset.records, b.dataset.records);
    }
}
