//! PrIM-style streaming microkernels (dense-kernel family; not in the
//! paper): `streamadd`, `reduction`, and `scan`.
//!
//! The UPMEM PrIM study characterizes processing-in-memory hardware with
//! deliberately tiny, memory-bound kernels whose arithmetic intensity is
//! near zero — the opposite corner from `gemm` within the dense family,
//! and the regular-streaming extreme against the graph family's
//! irregularity. The three microkernels here are its VA (vector add),
//! RED (reduction), and SCAN analogues, integer-only and divergence-free:
//!
//! * `streamadd` — `c = a + b` per record, accumulating a running sum and
//!   an XOR checksum of the `c` stream (two fields, lowest ops/byte of
//!   any benchmark).
//! * `reduction` — single-pass sum / min / max of one field.
//! * `scan` — per-thread inclusive prefix sum; the observable is the sum
//!   of all prefix values, which is *order-sensitive within a thread*, so
//!   it pins the exact record-visit order end to end.
//!
//! All arithmetic is wrapping `u32` (the ALU's native behaviour), and the
//! host references replay it bit-exactly.

use crate::gen::SplitMix64;
use crate::skeleton::{emit_multi_field_kernel, emit_single_field_kernel, R_ADDR, R_SLOT};
use crate::{Reduced, Workload};
use millipede_isa::reg::{r, Reg};
use millipede_isa::{AddrSpace, AluOp, ProgramBuilder};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid};

/// `streamadd` inputs are below this (sums stay far from wrapping, so
/// tests can cross-check against exact integer arithmetic).
pub const STREAMADD_RANGE: u32 = 1 << 15;
/// `reduction` inputs are below this (positive as signed words, so the
/// ALU's signed min/max agree with unsigned order, and small enough that
/// per-thread sums stay exact at every sweep size in the repo).
pub const REDUCTION_RANGE: u32 = 1 << 20;
/// `scan` inputs are below this (prefix checksums stay well inside u32).
pub const SCAN_RANGE: u32 = 1 << 8;

/// Sentinel the `reduction` min slot starts from (`i32::MAX`, above every
/// input).
pub const REDUCTION_MIN_INIT: u32 = 0x7fff_ffff;

const SA_STASH_OFF: i32 = 0; // a[j] scratch, slot-indexed
const SA_SUM_OFF: i32 = 16;
const SA_XOR_OFF: i32 = 20;
/// `streamadd` per-context live-state bytes.
pub const STREAMADD_LIVE_BYTES: usize = 24;

const RED_SUM_OFF: i32 = 0;
const RED_MIN_OFF: i32 = 4;
const RED_MAX_OFF: i32 = 8;
/// `reduction` per-context live-state bytes.
pub const REDUCTION_LIVE_BYTES: usize = 12;

const SCAN_RUN_OFF: i32 = 0;
const SCAN_CHK_OFF: i32 = 4;
/// `scan` per-context live-state bytes.
pub const SCAN_LIVE_BYTES: usize = 8;

// ---------------------------------------------------------------------
// streamadd
// ---------------------------------------------------------------------

/// Builds the `streamadd` workload (`(a, b)` records).
pub fn build_streamadd(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(2, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| {
        vec![rng.below(STREAMADD_RANGE), rng.below(STREAMADD_RANGE)]
    });
    let program = emit_multi_field_kernel(
        "streamadd",
        2,
        |_| {},
        Some(Box::new(|b: &mut ProgramBuilder| {
            // First field: stash a[j] per slot.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input);
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.st_local(r(10), r(12), SA_STASH_OFF);
        })),
        |b| {
            // Second field: c = a + b; sum += c; xorsum ^= c.
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // b
            b.alui(AluOp::Sll, r(12), R_SLOT, 2);
            b.ld(r(11), r(12), SA_STASH_OFF, AddrSpace::Local); // a[j]
            b.alu(AluOp::Add, r(10), r(10), r(11)); // c
            b.ld(r(13), Reg::ZERO, SA_SUM_OFF, AddrSpace::Local);
            b.alu(AluOp::Add, r(13), r(13), r(10));
            b.st_local(r(13), Reg::ZERO, SA_SUM_OFF);
            b.ld(r(14), Reg::ZERO, SA_XOR_OFF, AddrSpace::Local);
            b.alu(AluOp::Xor, r(14), r(14), r(10));
            b.st_local(r(14), Reg::ZERO, SA_XOR_OFF);
        },
        |_| {},
    );
    Workload {
        bench: crate::Benchmark::StreamAdd,
        program,
        dataset,
        live_bytes: STREAMADD_LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// `streamadd` Reduce: `[Σ sums, Σ per-thread XOR checksums]`.
pub fn reduce_streamadd(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64; 2];
    for s in states {
        out[0] += s[(SA_SUM_OFF / 4) as usize] as i64;
        out[1] += s[(SA_XOR_OFF / 4) as usize] as i64;
    }
    Reduced::Ints(out)
}

/// `streamadd` reference: wrapping-u32 replay per thread, folded in
/// thread order.
pub fn reference_streamadd(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut out = vec![0i64; 2];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let (mut sum, mut xorsum) = (0u32, 0u32);
            for rec in grid.records_of_thread(layout, corelet, context) {
                let c = w.dataset.records[rec][0].wrapping_add(w.dataset.records[rec][1]);
                sum = sum.wrapping_add(c);
                xorsum ^= c;
            }
            out[0] += sum as i64;
            out[1] += xorsum as i64;
        }
    }
    Reduced::Ints(out)
}

// ---------------------------------------------------------------------
// reduction
// ---------------------------------------------------------------------

/// Builds the `reduction` workload (single-field sum/min/max).
pub fn build_reduction(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(1, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| vec![rng.below(REDUCTION_RANGE)]);
    let program = emit_single_field_kernel(
        "reduction",
        |_| {},
        |b| {
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input);
            b.ld(r(11), Reg::ZERO, RED_SUM_OFF, AddrSpace::Local);
            b.alu(AluOp::Add, r(11), r(11), r(10));
            b.st_local(r(11), Reg::ZERO, RED_SUM_OFF);
            b.ld(r(12), Reg::ZERO, RED_MIN_OFF, AddrSpace::Local);
            b.alu(AluOp::Min, r(12), r(12), r(10));
            b.st_local(r(12), Reg::ZERO, RED_MIN_OFF);
            b.ld(r(13), Reg::ZERO, RED_MAX_OFF, AddrSpace::Local);
            b.alu(AluOp::Max, r(13), r(13), r(10));
            b.st_local(r(13), Reg::ZERO, RED_MAX_OFF);
        },
    );
    Workload {
        bench: crate::Benchmark::Reduction,
        program,
        dataset,
        live_bytes: REDUCTION_LIVE_BYTES,
        live_init: vec![(RED_MIN_OFF as u64, REDUCTION_MIN_INIT)],
    }
}

/// `reduction` Reduce: `[Σ sums, min of mins, max of maxes]`.
pub fn reduce_reduction(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64, i64::from(REDUCTION_MIN_INIT), 0];
    for s in states {
        out[0] += s[(RED_SUM_OFF / 4) as usize] as i64;
        out[1] = out[1].min(s[(RED_MIN_OFF / 4) as usize] as i64);
        out[2] = out[2].max(s[(RED_MAX_OFF / 4) as usize] as i64);
    }
    Reduced::Ints(out)
}

/// `reduction` reference: wrapping-u32 sums per thread, global min/max.
pub fn reference_reduction(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut out = vec![0i64, i64::from(REDUCTION_MIN_INIT), 0];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let mut sum = 0u32;
            for rec in grid.records_of_thread(layout, corelet, context) {
                let x = w.dataset.records[rec][0];
                sum = sum.wrapping_add(x);
                out[1] = out[1].min(i64::from(x));
                out[2] = out[2].max(i64::from(x));
            }
            out[0] += sum as i64;
        }
    }
    Reduced::Ints(out)
}

// ---------------------------------------------------------------------
// scan
// ---------------------------------------------------------------------

/// Builds the `scan` workload (per-thread inclusive prefix sum).
pub fn build_scan(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(1, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| vec![rng.below(SCAN_RANGE)]);
    let program = emit_single_field_kernel(
        "scan",
        |_| {},
        |b| {
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input);
            b.ld(r(11), Reg::ZERO, SCAN_RUN_OFF, AddrSpace::Local);
            b.alu(AluOp::Add, r(11), r(11), r(10)); // run += x
            b.st_local(r(11), Reg::ZERO, SCAN_RUN_OFF);
            b.ld(r(12), Reg::ZERO, SCAN_CHK_OFF, AddrSpace::Local);
            b.alu(AluOp::Add, r(12), r(12), r(11)); // check += run
            b.st_local(r(12), Reg::ZERO, SCAN_CHK_OFF);
        },
    );
    Workload {
        bench: crate::Benchmark::Scan,
        program,
        dataset,
        live_bytes: SCAN_LIVE_BYTES,
        live_init: Vec::new(),
    }
}

/// `scan` Reduce: `[Σ final prefix values, Σ prefix checksums]`.
pub fn reduce_scan(states: &[&[u32]]) -> Reduced {
    let mut out = vec![0i64; 2];
    for s in states {
        out[0] += s[(SCAN_RUN_OFF / 4) as usize] as i64;
        out[1] += s[(SCAN_CHK_OFF / 4) as usize] as i64;
    }
    Reduced::Ints(out)
}

/// `scan` reference: the prefix checksum is order-sensitive within a
/// thread, so this replays the exact record-visit order.
pub fn reference_scan(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut out = vec![0i64; 2];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let (mut run, mut check) = (0u32, 0u32);
            for rec in grid.records_of_thread(layout, corelet, context) {
                run = run.wrapping_add(w.dataset.records[rec][0]);
                check = check.wrapping_add(run);
            }
            out[0] += run as i64;
            out[1] += check as i64;
        }
    }
    Reduced::Ints(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        for bench in [Benchmark::StreamAdd, Benchmark::Reduction, Benchmark::Scan] {
            let w = Workload::build(bench, 3, 256, 37);
            for grid in [
                ThreadGrid::slab(8, 4),
                ThreadGrid::coalesced(16, 4),
                ThreadGrid::block_columns(16, 4),
            ] {
                assert_eq!(
                    w.run_functional(&grid),
                    w.reference(&grid),
                    "{}",
                    bench.name()
                );
            }
        }
    }

    #[test]
    fn streamadd_sum_is_exact() {
        let w = Workload::build(Benchmark::StreamAdd, 4, 512, 2);
        let want: i64 = w
            .dataset
            .records
            .iter()
            .map(|rec| i64::from(rec[0]) + i64::from(rec[1]))
            .sum();
        match w.run_functional(&ThreadGrid::slab(8, 4)) {
            Reduced::Ints(out) => assert_eq!(out[0], want),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reduction_matches_host_min_max_sum() {
        let w = Workload::build(Benchmark::Reduction, 4, 512, 21);
        let xs: Vec<u32> = w.dataset.records.iter().map(|rec| rec[0]).collect();
        match w.run_functional(&ThreadGrid::slab(8, 4)) {
            Reduced::Ints(out) => {
                assert_eq!(out[0], xs.iter().map(|&x| i64::from(x)).sum::<i64>());
                assert_eq!(out[1], i64::from(*xs.iter().min().unwrap()));
                assert_eq!(out[2], i64::from(*xs.iter().max().unwrap()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_checksum_depends_on_visit_order() {
        // The prefix checksum is the one observable that changes when the
        // per-thread record partition changes — exactly why `scan` pins
        // the visit order. (The plain sum must not change.)
        let w = Workload::build(Benchmark::Scan, 4, 1024, 13);
        let a = w.run_functional(&ThreadGrid::slab(8, 4));
        let b = w.run_functional(&ThreadGrid::slab(32, 4));
        match (&a, &b) {
            (Reduced::Ints(a), Reduced::Ints(b)) => {
                assert_eq!(a[0], b[0], "total sum is partition-invariant");
                assert_ne!(a[1], b[1], "prefix checksum should see the partition");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
