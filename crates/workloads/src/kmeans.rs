//! `kmeans` — one k-means iteration: assign each point to its nearest
//! centroid and accumulate the new centroid sums (Table II row 6).
//!
//! Same distance computation as `classify` (the finalize pass is shared),
//! plus: the field pass stashes each coordinate in per-slot scratch, and the
//! finalize pass folds the winning record into its cluster's running
//! coordinate sums — the paper's `O(1)`-per-point new-centroid accumulation.
//!
//! Live-state layout (per context):
//!
//! | bytes   | contents |
//! |---------|----------|
//! | 0–63    | `acc[j][K]` running squared distances (j < 4) |
//! | 64–191  | `cent[K][DIMS]` centroid constants |
//! | 192–207 | `counts[K]` |
//! | 208–335 | `xs[j][DIMS]` coordinate scratch |
//! | 336–463 | `sums[K][DIMS]` new-centroid sums |

use crate::classify::{centroid, emit_finalize, nearest_centroid, COORD_RANGE, DIMS, K};
use crate::gen::SplitMix64;
use crate::skeleton::{emit_multi_field_kernel, R_ADDR, R_FIELD, R_SLOT};
use crate::{Reduced, Workload};
use millipede_isa::reg::r;
use millipede_isa::{AddrSpace, AluOp, FAluOp};
use millipede_mapreduce::{Dataset, InterleavedLayout, ThreadGrid};

const CENT_OFF: i32 = 64;
const CNT_OFF: i32 = 192;
const XS_OFF: i32 = 208;
const SUMS_OFF: i32 = 336;
/// Per-context live-state bytes.
pub const LIVE_BYTES: usize = 512;

/// Builds the `kmeans` workload.
pub fn build(num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
    let layout = InterleavedLayout::new(DIMS, row_bytes, num_chunks);
    let mut rng = SplitMix64::new(seed);
    let dataset = Dataset::generate(layout, |_| {
        (0..DIMS)
            .map(|_| rng.range_f32(0.0, COORD_RANGE).to_bits())
            .collect()
    });
    let mut live_init = Vec::with_capacity(K * DIMS);
    for c in 0..K {
        for d in 0..DIMS {
            let addr = CENT_OFF as u64 + (c * DIMS + d) as u64 * 4;
            live_init.push((addr, centroid(c, d).to_bits()));
        }
    }
    let program = emit_multi_field_kernel(
        "kmeans",
        DIMS,
        |_| {},
        None,
        |b| {
            b.ld(r(10), R_ADDR, 0, AddrSpace::Input); // x
            b.alui(AluOp::Sll, r(12), R_SLOT, 4); // j*16 (acc row)
            for c in 0..K as i32 {
                b.ld(
                    r(13),
                    R_FIELD,
                    CENT_OFF + c * (DIMS as i32) * 4,
                    AddrSpace::Local,
                );
                b.falu(FAluOp::Fsub, r(14), r(10), r(13));
                b.falu(FAluOp::Fmul, r(14), r(14), r(14));
                b.ld(r(15), r(12), 4 * c, AddrSpace::Local);
                b.falu(FAluOp::Fadd, r(15), r(15), r(14));
                b.st_local(r(15), r(12), 4 * c);
            }
            // Stash x in the slot's coordinate scratch.
            b.alui(AluOp::Sll, r(21), R_SLOT, 5); // j*32
            b.alu(AluOp::Add, r(21), r(21), R_FIELD);
            b.st_local(r(10), r(21), XS_OFF);
        },
        |b| {
            emit_finalize(b, CNT_OFF, |b| {
                // sums[bestc][d] += xs[j][d], d unrolled.
                b.alui(AluOp::Sll, r(21), R_SLOT, 5); // j*32
                b.alui(AluOp::Sll, r(22), r(17), 5); // bestc*32
                for d in 0..DIMS as i32 {
                    b.ld(r(23), r(21), XS_OFF + 4 * d, AddrSpace::Local);
                    b.ld(r(24), r(22), SUMS_OFF + 4 * d, AddrSpace::Local);
                    b.falu(FAluOp::Fadd, r(24), r(24), r(23));
                    b.st_local(r(24), r(22), SUMS_OFF + 4 * d);
                }
            });
        },
    );
    Workload {
        bench: crate::Benchmark::Kmeans,
        program,
        dataset,
        live_bytes: LIVE_BYTES,
        live_init,
    }
}

/// Host Reduce: cluster counts (ints) and new-centroid coordinate sums
/// (`f32`, folded in thread order).
pub fn reduce(states: &[&[u32]]) -> Reduced {
    let mut ints = vec![0i64; K];
    let mut floats = vec![0.0f32; K * DIMS];
    for s in states {
        for c in 0..K {
            ints[c] += s[(CNT_OFF / 4) as usize + c] as i64;
        }
        for i in 0..K * DIMS {
            floats[i] += f32::from_bits(s[(SUMS_OFF / 4) as usize + i]);
        }
    }
    Reduced::Mixed { ints, floats }
}

/// Golden reference: replays per-thread visit order so the `f32` sums fold
/// identically.
pub fn reference(w: &Workload, grid: &ThreadGrid) -> Reduced {
    let layout = &w.dataset.layout;
    let mut ints = vec![0i64; K];
    let mut floats = vec![0.0f32; K * DIMS];
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let mut sums = [0.0f32; K * DIMS];
            for rec in grid.records_of_thread(layout, corelet, context) {
                let point = &w.dataset.records[rec];
                let c = nearest_centroid(point);
                ints[c] += 1;
                for d in 0..DIMS {
                    sums[c * DIMS + d] += f32::from_bits(point[d]);
                }
            }
            for i in 0..K * DIMS {
                floats[i] += sums[i];
            }
        }
    }
    Reduced::Mixed { ints, floats }
}

/// Host post-processing: the new centroids (sums / counts).
pub fn new_centroids(reduced: &Reduced) -> Vec<Vec<f32>> {
    let (ints, floats) = match reduced {
        Reduced::Mixed { ints, floats } => (ints, floats),
        other => panic!("kmeans output must be Mixed, got {other:?}"),
    };
    (0..K)
        .map(|c| {
            (0..DIMS)
                .map(|d| {
                    if ints[c] == 0 {
                        0.0
                    } else {
                        floats[c * DIMS + d] / ints[c] as f32
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn functional_matches_reference() {
        let w = Workload::build(Benchmark::Kmeans, 2, 256, 51);
        let grid = ThreadGrid::slab(8, 4);
        assert_eq!(w.run_functional(&grid), w.reference(&grid));
    }

    #[test]
    fn counts_cover_all_records_and_sums_are_positive() {
        let w = Workload::build(Benchmark::Kmeans, 2, 2048, 7);
        let grid = ThreadGrid::slab(32, 4);
        match w.run_functional(&grid) {
            Reduced::Mixed { ints, floats } => {
                assert_eq!(ints.iter().sum::<i64>(), w.dataset.num_records() as i64);
                assert!(floats.iter().all(|&f| f >= 0.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn new_centroids_move_toward_their_clusters() {
        let w = Workload::build(Benchmark::Kmeans, 4, 2048, 19);
        let grid = ThreadGrid::slab(32, 4);
        let out = w.run_functional(&grid);
        let cents = new_centroids(&out);
        // The new centroids stay within the data range, and the extreme
        // clusters keep their ordering along dimension 0 (clusters overlap
        // in the middle because the centroids also differ in higher dims).
        for c in 0..K {
            for d in 0..DIMS {
                assert!((0.0..COORD_RANGE).contains(&cents[c][d]));
            }
        }
        assert!(cents[K - 1][0] > cents[0][0]);
    }

    // Compile-time check: the live state fits the 1 KB context partition.
    const _: () = assert!(LIVE_BYTES <= 1024);
}
