//! The compiled-in benchmark suite: the paper's eight BMLAs plus two
//! bracketing workload families the paper never had.
//!
//! Each benchmark supplies four pieces:
//!
//! 1. a **kernel** in the mini-ISA implementing the Map + partial-Reduce in
//!    the field-major visit order the interleaved layout demands (records
//!    span `num_fields` consecutive DRAM rows, so kernels walk a chunk row
//!    by row, keeping per-record-slot partial state in local memory — this
//!    is why the paper's software-barrier alternative fails: "the full
//!    records far exceed the prefetch buffer entries", §IV-C);
//! 2. a **dataset generator** (deterministic, seeded) producing records with
//!    the paper's characteristics — notably data-dependent branches with
//!    roughly 70/30 taken splits (§VI-A);
//! 3. a **host Reduce** combining the per-thread live states (§IV-D); and
//! 4. a **pure-Rust reference** that replays the exact per-thread visit
//!    order and `f32` arithmetic, so golden tests compare bit-exactly.
//!
//! The paper's BMLA benchmarks appear in Table IV's order of increasing
//! instructions per input word: `count`, `sample`, `variance`, `nbayes`,
//! `classify`, `kmeans`, `pca`, `gda` ([`Benchmark::BMLA`]). Dimensionalities
//! (chosen to fit each context's 1 KB live-state partition while preserving
//! the paper's compute-intensity ordering) are constants in each module.
//!
//! Two further families bracket the BMLAs' regular record streaming
//! (ROADMAP open item 2):
//!
//! * **graph analytics** ([`Benchmark::GRAPH`]): `pagerank` and `bfs` over
//!   a deterministic CSR edge stream — the irregular-access adversarial
//!   case (Tesseract-style), with data-dependent indexed local accesses
//!   and divergent frontier branches;
//! * **dense kernels** ([`Benchmark::DENSE`]): tiled `gemm` plus the
//!   PrIM-style `streamadd` / `reduction` / `scan` microkernels — the
//!   regular dense case, spanning the two extremes of arithmetic
//!   intensity.

#![warn(missing_docs)]
// Reference implementations use indexed loops that mirror the kernels'
// address arithmetic one-for-one; iterator rewrites would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod bfs;
pub mod classify;
pub mod count;
pub mod gda;
pub mod gemm;
pub mod gen;
pub mod graph;
pub mod kmeans;
pub mod meta;
pub mod nbayes;
pub mod pagerank;
pub mod pca;
pub mod prim;
pub mod sample;
pub mod skeleton;
pub mod variance;

use millipede_engine::{LaunchParams, ThreadCtx};
use millipede_isa::Program;
use millipede_mapreduce::{Dataset, ThreadGrid};

/// Workload family a benchmark belongs to (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// The paper's eight BMLA benchmarks (Table II / Table IV).
    Bmla,
    /// Graph analytics over a CSR edge stream (irregular-access case).
    Graph,
    /// Dense kernels: tiled GEMM + PrIM-style streaming microkernels.
    Dense,
}

impl Family {
    /// Lower-case family label.
    pub fn name(self) -> &'static str {
        match self {
            Family::Bmla => "bmla",
            Family::Graph => "graph",
            Family::Dense => "dense",
        }
    }
}

/// The compiled-in benchmarks: the eight BMLAs (Table IV order) followed
/// by the graph-analytics and dense-kernel families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Filtered histogram of movie ratings.
    Count,
    /// Systematic per-bin sample selection.
    Sample,
    /// Per-bin count / sum / sum-of-squares statistics.
    Variance,
    /// Naive Bayes conditional-probability counting (Table I).
    NBayes,
    /// Supervised classification via Euclidean distance to fixed centroids.
    Classify,
    /// One k-means iteration: assign + accumulate new centroids.
    Kmeans,
    /// Principal component analysis: mean + covariance accumulation.
    Pca,
    /// Gaussian discriminant analysis: per-class mean + covariance.
    Gda,
    /// One push-style PageRank power-iteration step over a CSR edge stream.
    Pagerank,
    /// One BFS frontier-relaxation sweep over a CSR edge stream.
    Bfs,
    /// Tiled dense matrix multiply streamed along the k dimension.
    Gemm,
    /// PrIM-style vector add with running sum + XOR checksum.
    StreamAdd,
    /// PrIM-style single-pass sum / min / max reduction.
    Reduction,
    /// PrIM-style per-thread inclusive prefix sum with order-sensitive
    /// checksum.
    Scan,
}

impl Benchmark {
    /// Every compiled-in benchmark: [`Benchmark::BMLA`] first (so the
    /// paper-table indices stay stable), then [`Benchmark::GRAPH`], then
    /// [`Benchmark::DENSE`].
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Count,
        Benchmark::Sample,
        Benchmark::Variance,
        Benchmark::NBayes,
        Benchmark::Classify,
        Benchmark::Kmeans,
        Benchmark::Pca,
        Benchmark::Gda,
        Benchmark::Pagerank,
        Benchmark::Bfs,
        Benchmark::Gemm,
        Benchmark::StreamAdd,
        Benchmark::Reduction,
        Benchmark::Scan,
    ];

    /// The paper's eight BMLA benchmarks in Table IV order — the set every
    /// paper figure and table sweeps.
    pub const BMLA: [Benchmark; 8] = [
        Benchmark::Count,
        Benchmark::Sample,
        Benchmark::Variance,
        Benchmark::NBayes,
        Benchmark::Classify,
        Benchmark::Kmeans,
        Benchmark::Pca,
        Benchmark::Gda,
    ];

    /// The graph-analytics family.
    pub const GRAPH: [Benchmark; 2] = [Benchmark::Pagerank, Benchmark::Bfs];

    /// The dense-kernel family.
    pub const DENSE: [Benchmark; 4] = [
        Benchmark::Gemm,
        Benchmark::StreamAdd,
        Benchmark::Reduction,
        Benchmark::Scan,
    ];

    /// The workload family this benchmark belongs to.
    pub fn family(self) -> Family {
        match self {
            Benchmark::Count
            | Benchmark::Sample
            | Benchmark::Variance
            | Benchmark::NBayes
            | Benchmark::Classify
            | Benchmark::Kmeans
            | Benchmark::Pca
            | Benchmark::Gda => Family::Bmla,
            Benchmark::Pagerank | Benchmark::Bfs => Family::Graph,
            Benchmark::Gemm | Benchmark::StreamAdd | Benchmark::Reduction | Benchmark::Scan => {
                Family::Dense
            }
        }
    }

    /// The benchmark's name as used in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Count => "count",
            Benchmark::Sample => "sample",
            Benchmark::Variance => "variance",
            Benchmark::NBayes => "nbayes",
            Benchmark::Classify => "classify",
            Benchmark::Kmeans => "kmeans",
            Benchmark::Pca => "pca",
            Benchmark::Gda => "gda",
            Benchmark::Pagerank => "pagerank",
            Benchmark::Bfs => "bfs",
            Benchmark::Gemm => "gemm",
            Benchmark::StreamAdd => "streamadd",
            Benchmark::Reduction => "reduction",
            Benchmark::Scan => "scan",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }
}

/// Every compiled-in kernel in sweep order — the one shared enumeration
/// behind every `--kernels` flag (`millipede-audit --kernels`,
/// `millipede-cli verify/disasm/run --kernels`). Pinned equal to
/// [`Benchmark::ALL`] by test, so a new benchmark flows into every sweep
/// automatically and no caller keeps its own list.
pub fn kernel_benchmarks() -> impl Iterator<Item = Benchmark> {
    Benchmark::ALL.into_iter()
}

/// The standard static-inspection [`Workload`] for one kernel: a single
/// chunk on the default 2 KB row with a fixed seed — just enough to
/// materialize the program and its live local footprint for the static
/// verifier and disassembler, identical across every sweep that only
/// inspects code.
pub fn kernel_workload(bench: Benchmark) -> Workload {
    Workload::build(bench, 1, 2048, 1)
}

/// The final reduced output of a benchmark, comparable against its golden
/// reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Reduced {
    /// Integer outputs (counts, integer sums).
    Ints(Vec<i64>),
    /// `f32` outputs (means, covariances, centroid sums) — compared
    /// bit-exactly because the reference replays kernel arithmetic order.
    Floats(Vec<f32>),
    /// Both kinds (e.g. kmeans: cluster counts + centroid sums).
    Mixed {
        /// Integer outputs.
        ints: Vec<i64>,
        /// `f32` outputs.
        floats: Vec<f32>,
    },
}

impl Reduced {
    /// Number of output elements.
    pub fn len(&self) -> usize {
        match self {
            Reduced::Ints(v) => v.len(),
            Reduced::Floats(v) => v.len(),
            Reduced::Mixed { ints, floats } => ints.len() + floats.len(),
        }
    }

    /// Whether the output is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fully instantiated benchmark: kernel + dataset + live-state contract.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub bench: Benchmark,
    /// The kernel program.
    pub program: Program,
    /// The generated dataset.
    pub dataset: Dataset,
    /// Per-context live-state bytes (≤ 1024: a 4 KB corelet local memory
    /// partitioned across 4 contexts).
    pub live_bytes: usize,
    /// Initial live-state words `(byte_addr, value)` written into every
    /// context before launch (constants such as classify's centroids).
    pub live_init: Vec<(u64, u32)>,
}

impl Workload {
    /// Builds `bench` over `num_chunks` chunks of input with the given
    /// deterministic `seed` and DRAM `row_bytes`.
    ///
    /// ```
    /// use millipede_workloads::{Benchmark, Workload};
    /// use millipede_mapreduce::ThreadGrid;
    ///
    /// let w = Workload::build(Benchmark::Count, 2, 2048, 7);
    /// assert_eq!(w.dataset.num_records(), 2 * 512);
    /// // Functional execution reproduces the golden reference.
    /// let grid = ThreadGrid::paper_default();
    /// assert_eq!(w.run_functional(&grid), w.reference(&grid));
    /// ```
    pub fn build(bench: Benchmark, num_chunks: usize, row_bytes: u64, seed: u64) -> Workload {
        match bench {
            Benchmark::Count => count::build(num_chunks, row_bytes, seed),
            Benchmark::Sample => sample::build(num_chunks, row_bytes, seed),
            Benchmark::Variance => variance::build(num_chunks, row_bytes, seed),
            Benchmark::NBayes => nbayes::build(num_chunks, row_bytes, seed),
            Benchmark::Classify => classify::build(num_chunks, row_bytes, seed),
            Benchmark::Kmeans => kmeans::build(num_chunks, row_bytes, seed),
            Benchmark::Pca => pca::build(num_chunks, row_bytes, seed),
            Benchmark::Gda => gda::build(num_chunks, row_bytes, seed),
            Benchmark::Pagerank => pagerank::build(num_chunks, row_bytes, seed),
            Benchmark::Bfs => bfs::build(num_chunks, row_bytes, seed),
            Benchmark::Gemm => gemm::build(num_chunks, row_bytes, seed),
            Benchmark::StreamAdd => prim::build_streamadd(num_chunks, row_bytes, seed),
            Benchmark::Reduction => prim::build_reduction(num_chunks, row_bytes, seed),
            Benchmark::Scan => prim::build_scan(num_chunks, row_bytes, seed),
        }
    }

    /// Launch parameters for thread `(corelet, context)` of `grid`.
    pub fn launch_params(&self, grid: &ThreadGrid, corelet: usize, context: usize) -> LaunchParams {
        grid.launch_params(&self.dataset.layout, corelet, context)
    }

    /// Creates an initialized thread context for `(corelet, context)`.
    pub fn make_ctx(&self, grid: &ThreadGrid, corelet: usize, context: usize) -> ThreadCtx {
        let params = self.launch_params(grid, corelet, context);
        let mut ctx = ThreadCtx::new(self.live_bytes, &params);
        for &(addr, value) in &self.live_init {
            ctx.local
                .store(addr, value)
                .expect("live_init within live_bytes");
        }
        ctx
    }

    /// Host-side per-node Reduce over the threads' final live states, in
    /// thread order (`corelet`-major, then `context`).
    pub fn reduce(&self, states: &[&[u32]]) -> Reduced {
        match self.bench {
            Benchmark::Count => count::reduce(states),
            Benchmark::Sample => sample::reduce(states),
            Benchmark::Variance => variance::reduce(states),
            Benchmark::NBayes => nbayes::reduce(states),
            Benchmark::Classify => classify::reduce(states),
            Benchmark::Kmeans => kmeans::reduce(states),
            Benchmark::Pca => pca::reduce(states),
            Benchmark::Gda => gda::reduce(states),
            Benchmark::Pagerank => pagerank::reduce(states),
            Benchmark::Bfs => bfs::reduce(states),
            Benchmark::Gemm => gemm::reduce(states),
            Benchmark::StreamAdd => prim::reduce_streamadd(states),
            Benchmark::Reduction => prim::reduce_reduction(states),
            Benchmark::Scan => prim::reduce_scan(states),
        }
    }

    /// Runs every thread of `grid` functionally (no timing) and reduces —
    /// the cheapest end-to-end execution of the workload, used by golden
    /// tests and by architecture models' validation paths.
    pub fn run_functional(&self, grid: &ThreadGrid) -> Reduced {
        let mut ctxs: Vec<ThreadCtx> = Vec::with_capacity(grid.num_threads());
        for corelet in 0..grid.corelets {
            for context in 0..grid.contexts {
                let mut ctx = self.make_ctx(grid, corelet, context);
                millipede_engine::run_functional(
                    &mut ctx,
                    &self.program,
                    &self.dataset.image,
                    millipede_engine::DEFAULT_STEP_LIMIT,
                )
                .expect("workload kernel must not trap");
                ctxs.push(ctx);
            }
        }
        let states: Vec<&[u32]> = ctxs.iter().map(|c| c.local.words()).collect();
        self.reduce(&states)
    }

    /// Splits the dataset chunk-wise into `n` shards, one per PNM
    /// processor — the paper's cluster model ("BMLA input data is sharded
    /// across a cluster ... where each node performs its Map and partial
    /// Reduce", §III-A). Shard outputs recombine with [`combine_outputs`].
    ///
    /// # Panics
    ///
    /// Panics unless the chunk count divides evenly by `n`.
    pub fn shard(&self, n: usize) -> Vec<Workload> {
        assert!(n > 0);
        assert!(
            self.dataset.layout.num_chunks.is_multiple_of(n),
            "{} chunks not divisible into {n} shards",
            self.dataset.layout.num_chunks
        );
        let chunks_per = self.dataset.layout.num_chunks / n;
        let recs_per = chunks_per * self.dataset.layout.row_words();
        (0..n)
            .map(|i| {
                let layout = millipede_mapreduce::InterleavedLayout::new(
                    self.dataset.layout.num_fields,
                    self.dataset.layout.row_bytes,
                    chunks_per,
                );
                let records = self.dataset.records[i * recs_per..(i + 1) * recs_per].to_vec();
                Workload {
                    bench: self.bench,
                    program: self.program.clone(),
                    dataset: Dataset::new(layout, records),
                    live_bytes: self.live_bytes,
                    live_init: self.live_init.clone(),
                }
            })
            .collect()
    }

    /// Golden reference output, replaying the per-thread visit order of
    /// `grid` with kernel-identical arithmetic.
    pub fn reference(&self, grid: &ThreadGrid) -> Reduced {
        match self.bench {
            Benchmark::Count => count::reference(self, grid),
            Benchmark::Sample => sample::reference(self, grid),
            Benchmark::Variance => variance::reference(self, grid),
            Benchmark::NBayes => nbayes::reference(self, grid),
            Benchmark::Classify => classify::reference(self, grid),
            Benchmark::Kmeans => kmeans::reference(self, grid),
            Benchmark::Pca => pca::reference(self, grid),
            Benchmark::Gda => gda::reference(self, grid),
            Benchmark::Pagerank => pagerank::reference(self, grid),
            Benchmark::Bfs => bfs::reference(self, grid),
            Benchmark::Gemm => gemm::reference(self, grid),
            Benchmark::StreamAdd => prim::reference_streamadd(self, grid),
            Benchmark::Reduction => prim::reference_reduction(self, grid),
            Benchmark::Scan => prim::reference_scan(self, grid),
        }
    }
}

/// Combines per-shard reduced outputs into the cluster-level final Reduce
/// (§III-A's "global final Reduce"). Every benchmark's outputs combine by
/// elementwise addition, except `sample`'s kept-representative section
/// (maximum, see `sample::combine`) and `bfs`'s relaxation targets
/// (minimum, see `bfs::combine`).
pub fn combine_outputs(bench: Benchmark, outputs: &[Reduced]) -> Reduced {
    assert!(!outputs.is_empty());
    if bench == Benchmark::Sample {
        return sample::combine(outputs);
    }
    if bench == Benchmark::Bfs {
        return bfs::combine(outputs);
    }
    let mut acc = outputs[0].clone();
    for out in &outputs[1..] {
        match (&mut acc, out) {
            (Reduced::Ints(a), Reduced::Ints(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (Reduced::Floats(a), Reduced::Floats(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (
                Reduced::Mixed {
                    ints: ai,
                    floats: af,
                },
                Reduced::Mixed {
                    ints: bi,
                    floats: bf,
                },
            ) => {
                assert_eq!(ai.len(), bi.len());
                assert_eq!(af.len(), bf.len());
                for (x, y) in ai.iter_mut().zip(bi) {
                    *x += y;
                }
                for (x, y) in af.iter_mut().zip(bf) {
                    *x += y;
                }
            }
            _ => panic!("mismatched shard output kinds"),
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("bogus"), None);
    }

    #[test]
    fn table_iv_order() {
        assert_eq!(Benchmark::ALL[0].name(), "count");
        assert_eq!(Benchmark::ALL[7].name(), "gda");
        // ALL is BMLA ++ GRAPH ++ DENSE, so paper-table indices are stable.
        assert_eq!(&Benchmark::ALL[..8], &Benchmark::BMLA);
        assert_eq!(&Benchmark::ALL[8..10], &Benchmark::GRAPH);
        assert_eq!(&Benchmark::ALL[10..], &Benchmark::DENSE);
    }

    #[test]
    fn kernel_sweep_is_pinned_to_all() {
        // Every `--kernels` consumer enumerates through this helper; pin it
        // to `Benchmark::ALL` so the sweeps can never drift apart.
        let swept: Vec<Benchmark> = kernel_benchmarks().collect();
        assert_eq!(swept, Benchmark::ALL.to_vec());
        for b in kernel_benchmarks() {
            let w = kernel_workload(b);
            assert_eq!(w.bench, b);
            assert!(!w.program.is_empty());
            assert!(w.live_bytes > 0);
        }
    }

    #[test]
    fn families_partition_the_benchmarks() {
        for b in Benchmark::BMLA {
            assert_eq!(b.family(), Family::Bmla);
        }
        for b in Benchmark::GRAPH {
            assert_eq!(b.family(), Family::Graph);
        }
        for b in Benchmark::DENSE {
            assert_eq!(b.family(), Family::Dense);
        }
        assert_eq!(
            Benchmark::BMLA.len() + Benchmark::GRAPH.len() + Benchmark::DENSE.len(),
            Benchmark::ALL.len()
        );
    }

    #[test]
    fn reduced_len() {
        assert_eq!(Reduced::Ints(vec![1, 2]).len(), 2);
        assert_eq!(Reduced::Floats(vec![]).len(), 0);
        assert!(Reduced::Floats(vec![]).is_empty());
    }

    #[test]
    fn sharding_partitions_the_records() {
        let w = Workload::build(Benchmark::NBayes, 8, 256, 3);
        let shards = w.shard(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.dataset.num_records()).sum();
        assert_eq!(total, w.dataset.num_records());
        // Concatenated shard records equal the original records.
        let cat: Vec<_> = shards
            .iter()
            .flat_map(|s| s.dataset.records.iter().cloned())
            .collect();
        assert_eq!(cat, w.dataset.records);
    }

    #[test]
    fn shard_references_combine_to_the_full_reference() {
        let grid = ThreadGrid::slab(8, 4);
        for bench in [Benchmark::Count, Benchmark::Variance, Benchmark::NBayes] {
            let w = Workload::build(bench, 4, 256, 9);
            let refs: Vec<Reduced> = w.shard(2).iter().map(|s| s.reference(&grid)).collect();
            assert_eq!(
                combine_outputs(bench, &refs),
                w.reference(&grid),
                "{}",
                bench.name()
            );
        }
    }

    #[test]
    fn sharded_functional_runs_combine_to_the_full_reference() {
        let grid = ThreadGrid::slab(8, 4);
        let w = Workload::build(Benchmark::Kmeans, 4, 256, 11);
        let outs: Vec<Reduced> = w.shard(4).iter().map(|s| s.run_functional(&grid)).collect();
        let refs: Vec<Reduced> = w.shard(4).iter().map(|s| s.reference(&grid)).collect();
        assert_eq!(
            combine_outputs(Benchmark::Kmeans, &outs),
            combine_outputs(Benchmark::Kmeans, &refs)
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn shard_rejects_uneven_splits() {
        let w = Workload::build(Benchmark::Count, 3, 256, 1);
        let _ = w.shard(2);
    }
}
