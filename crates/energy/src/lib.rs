//! Event-based energy model (the GPUWattch substitute, §V of the paper).
//!
//! The paper's Fig. 4 conclusions rest on *relative* component magnitudes,
//! which this model encodes as per-event energies:
//!
//! * **SIMT amortization** — instruction fetch/decode energy is charged per
//!   *issue* (one per warp on the GPGPU, one per instruction on MIMD
//!   machines), the GPGPU's genuine energy advantage (§III-E);
//! * **Shared-Memory crossbar** — a GPGPU live-state access (32-way banked,
//!   32×32 switch) costs several times a Millipede local-memory access or
//!   an SSMC L1 access; this is why the GPGPU's core energy exceeds SSMC's
//!   despite the fetch amortization;
//! * **idle dynamic energy** — imperfect clock gating charges every lane
//!   cycle not executing an instruction (branch-masked SIMT lanes, memory
//!   stalls). Millipede's rate-matching saves exactly this term: at a lower
//!   clock the same wall-time contains fewer (idle) cycles;
//! * **DRAM** — 6 pJ/bit transferred (Table III \[31\]) plus an activation
//!   energy per row ACT, the term that penalizes SSMC's row thrashing;
//! * **leakage** — proportional to runtime, so the fastest architecture
//!   wins static energy (§VI-B).
//!
//! The conventional multicore (Fig. 5) uses its own constants: wide
//! out-of-order cores cost an order of magnitude more per instruction, and
//! off-chip DRAM costs 70 pJ/bit \[44\].

#![warn(missing_docs)]

use millipede_dram::DramStats;
use millipede_engine::{CoreStats, TimePs};

/// Which architecture's structures back the kernel's memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// Corelet local memories + row prefetch buffers.
    Millipede,
    /// Per-core L1 D-caches.
    Ssmc,
    /// Shared Memory (live state) + L1 (input), SIMT issue. Covers GPGPU,
    /// VWS, and VWS-row (whose input side reports prefetch-buffer hits).
    Gpgpu,
    /// The conventional out-of-order multicore.
    Multicore,
}

/// Per-event energy constants (picojoules unless noted).
#[derive(Debug, Clone)]
pub struct EnergyParams {
    /// Decode/execute per thread instruction.
    pub pipeline_op: f64,
    /// Register-file access per thread instruction.
    pub regfile: f64,
    /// Instruction fetch + I-cache per *issue* event.
    pub ifetch: f64,
    /// Millipede local-memory / prefetch-buffer word access.
    pub local_mem: f64,
    /// L1 D-cache access.
    pub l1: f64,
    /// Shared-Memory access through the crossbar (per thread access).
    pub shared_mem: f64,
    /// Idle dynamic energy per lane-cycle not executing (imperfect clock
    /// gating).
    pub idle_lane: f64,
    /// DRAM transfer energy per bit (Table III: 6 pJ/bit).
    pub dram_pj_per_bit: f64,
    /// DRAM row-activation energy in nanojoules.
    pub dram_activate_nj: f64,
    /// Leakage per corelet/lane in milliwatts.
    pub leak_mw_per_lane: f64,
    /// Fixed logic-die leakage in milliwatts.
    pub leak_mw_fixed: f64,
    /// Multicore: energy per instruction (rename/ROB/bypass overheads).
    pub mc_pipeline_op: f64,
    /// Multicore: off-chip DRAM energy per bit (70 pJ/bit \[44\]).
    pub mc_dram_pj_per_bit: f64,
    /// Multicore: leakage per core in milliwatts (large OoO cores + L2).
    pub mc_leak_mw_per_core: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            pipeline_op: 6.0,
            regfile: 3.0,
            ifetch: 4.0,
            local_mem: 3.0,
            l1: 6.0,
            shared_mem: 20.0,
            idle_lane: 6.0,
            dram_pj_per_bit: 6.0,
            dram_activate_nj: 4.0,
            leak_mw_per_lane: 1.0,
            leak_mw_fixed: 8.0,
            mc_pipeline_op: 60.0,
            mc_dram_pj_per_bit: 70.0,
            mc_leak_mw_per_core: 60.0,
        }
    }
}

/// An energy result, split the way Fig. 4's stacked bars are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Core dynamic energy (pipelines, fetch, on-die memories, idle), pJ.
    pub core_pj: f64,
    /// DRAM energy (transfer + activation), pJ.
    pub dram_pj: f64,
    /// Leakage, pJ.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.dram_pj + self.static_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Energy–delay product in pJ·s.
    pub fn edp(&self, elapsed_ps: TimePs) -> f64 {
        self.total_pj() * (elapsed_ps as f64 / 1e12)
    }
}

/// Computes the energy of one simulated run.
///
/// `lanes` is the number of compute lanes/corelets/cores sharing the
/// processor (32 for the PNM architectures), used for idle and leakage.
pub fn compute(
    kind: ArchKind,
    lanes: usize,
    stats: &CoreStats,
    dram: &DramStats,
    elapsed_ps: TimePs,
    p: &EnergyParams,
) -> EnergyBreakdown {
    let mw_ps_to_pj = 1e-3; // 1 mW × 1 ps = 1e-15 J = 1e-3 pJ
    match kind {
        ArchKind::Multicore => {
            let core = stats.instructions as f64 * p.mc_pipeline_op;
            let dram_pj = dram.bytes_transferred as f64 * 8.0 * p.mc_dram_pj_per_bit
                + dram.activations as f64 * p.dram_activate_nj * 1000.0;
            let static_pj = lanes as f64 * p.mc_leak_mw_per_core * elapsed_ps as f64 * mw_ps_to_pj;
            EnergyBreakdown {
                core_pj: core,
                dram_pj,
                static_pj,
            }
        }
        _ => {
            let insts = stats.instructions as f64;
            let mut core = insts * (p.pipeline_op + p.regfile);
            core += stats.issues as f64 * p.ifetch;
            // Live-state accesses.
            let live = (stats.local_loads + stats.local_stores) as f64;
            core += match kind {
                ArchKind::Millipede => live * p.local_mem,
                ArchKind::Ssmc => live * p.l1,
                ArchKind::Gpgpu => live * p.shared_mem,
                ArchKind::Multicore => unreachable!(),
            };
            // Input-side accesses: prefetch-buffer words (Millipede,
            // VWS-row) and/or L1 transactions (SSMC per word, GPGPU per
            // coalesced block).
            core += stats.pbuf_hits as f64 * p.local_mem;
            core += (stats.l1_hits + stats.l1_misses) as f64 * p.l1;
            // Idle dynamic energy: lane-cycles without an executed
            // instruction.
            // audit:allow(cast-truncation): energy accounting in f64; counts stay far below 2^53
            let lane_cycles = stats.compute_cycles.saturating_mul(lanes as u64) as f64;
            core += (lane_cycles - insts).max(0.0) * p.idle_lane;

            let dram_pj = dram.bytes_transferred as f64 * 8.0 * p.dram_pj_per_bit
                + dram.activations as f64 * p.dram_activate_nj * 1000.0;
            let static_pj = (lanes as f64 * p.leak_mw_per_lane + p.leak_mw_fixed)
                * elapsed_ps as f64
                * mw_ps_to_pj;
            EnergyBreakdown {
                core_pj: core,
                dram_pj,
                static_pj,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(insts: u64, issues: u64, cycles: u64) -> CoreStats {
        CoreStats {
            instructions: insts,
            issues,
            compute_cycles: cycles,
            ..Default::default()
        }
    }

    fn dram(bytes: u64, acts: u64) -> DramStats {
        DramStats {
            bytes_transferred: bytes,
            activations: acts,
            ..Default::default()
        }
    }

    #[test]
    fn simt_fetch_amortization() {
        let p = EnergyParams::default();
        // Same thread work; GPGPU issues 1/32 as often.
        let mimd = compute(
            ArchKind::Ssmc,
            32,
            &stats(32_000, 32_000, 1000),
            &dram(0, 0),
            0,
            &p,
        );
        let simt = compute(
            ArchKind::Gpgpu,
            32,
            &stats(32_000, 1_000, 1000),
            &dram(0, 0),
            0,
            &p,
        );
        assert!(simt.core_pj < mimd.core_pj);
        let diff = mimd.core_pj - simt.core_pj;
        assert!((diff - 31_000.0 * p.ifetch).abs() < 1e-6);
    }

    #[test]
    fn shared_memory_costs_more_than_local() {
        let p = EnergyParams::default();
        let mut s = stats(1000, 1000, 100);
        s.local_loads = 500;
        let milli = compute(ArchKind::Millipede, 32, &s, &dram(0, 0), 0, &p);
        let gpgpu = compute(ArchKind::Gpgpu, 32, &s, &dram(0, 0), 0, &p);
        assert!(gpgpu.core_pj > milli.core_pj);
    }

    #[test]
    fn dram_energy_scales_with_bits_and_activations() {
        let p = EnergyParams::default();
        let e = compute(
            ArchKind::Millipede,
            32,
            &stats(0, 0, 0),
            &dram(1024, 3),
            0,
            &p,
        );
        let expect = 1024.0 * 8.0 * 6.0 + 3.0 * 4000.0;
        assert!((e.dram_pj - expect).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_time() {
        let p = EnergyParams::default();
        let fast = compute(
            ArchKind::Ssmc,
            32,
            &stats(0, 0, 0),
            &dram(0, 0),
            1_000_000,
            &p,
        );
        let slow = compute(
            ArchKind::Ssmc,
            32,
            &stats(0, 0, 0),
            &dram(0, 0),
            2_000_000,
            &p,
        );
        assert!((slow.static_pj - 2.0 * fast.static_pj).abs() < 1e-9);
    }

    #[test]
    fn idle_energy_rewards_fewer_cycles_at_same_work() {
        // Rate matching: same instructions and wall time, fewer cycles.
        let p = EnergyParams::default();
        let nominal = compute(
            ArchKind::Millipede,
            32,
            &stats(10_000, 10_000, 2_000),
            &dram(0, 0),
            1_000_000,
            &p,
        );
        let matched = compute(
            ArchKind::Millipede,
            32,
            &stats(10_000, 10_000, 1_200),
            &dram(0, 0),
            1_000_000,
            &p,
        );
        assert!(matched.core_pj < nominal.core_pj);
        assert_eq!(matched.static_pj, nominal.static_pj);
    }

    #[test]
    fn multicore_uses_offchip_constants() {
        let p = EnergyParams::default();
        let e = compute(
            ArchKind::Multicore,
            8,
            &stats(1_000, 1_000, 0),
            &dram(1024, 0),
            1_000_000,
            &p,
        );
        assert!((e.core_pj - 60_000.0).abs() < 1e-9);
        assert!((e.dram_pj - 1024.0 * 8.0 * 70.0).abs() < 1e-9);
        assert!((e.static_pj - 8.0 * 60.0 * 1_000_000.0 * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals() {
        let b = EnergyBreakdown {
            core_pj: 1.0,
            dram_pj: 2.0,
            static_pj: 3.0,
        };
        assert_eq!(b.total_pj(), 6.0);
        assert!((b.total_uj() - 6e-6).abs() < 1e-18);
        assert!((b.edp(1_000_000) - 6e-6).abs() < 1e-12);
    }
}
