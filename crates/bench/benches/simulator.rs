//! Criterion benches of the simulator's own throughput: how fast each
//! architecture model simulates one benchmark. Useful for tracking
//! regressions in the simulation kernels themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use millipede_mapreduce::ThreadGrid;
use millipede_sim::{Arch, SimConfig};
use millipede_workloads::{Benchmark, Workload};

fn bench_architectures(c: &mut Criterion) {
    let cfg = SimConfig {
        num_chunks: 4,
        ..Default::default()
    };
    let mut g = c.benchmark_group("simulate-count");
    g.sample_size(10);
    for arch in [
        Arch::Gpgpu,
        Arch::Vws,
        Arch::Ssmc,
        Arch::VwsRow,
        Arch::Millipede,
        Arch::Multicore,
    ] {
        let w = Workload::build(Benchmark::Count, cfg.num_chunks, cfg.row_bytes, cfg.seed);
        g.bench_with_input(BenchmarkId::from_parameter(arch.label()), &w, |b, w| {
            b.iter(|| arch.run(w, &cfg))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("simulate-millipede");
    g.sample_size(10);
    for bench in [Benchmark::Count, Benchmark::NBayes, Benchmark::Kmeans, Benchmark::Gda] {
        let w = Workload::build(bench, cfg.num_chunks, cfg.row_bytes, cfg.seed);
        g.bench_with_input(BenchmarkId::from_parameter(bench.name()), &w, |b, w| {
            b.iter(|| Arch::Millipede.run(w, &cfg))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("functional-engine");
    g.sample_size(20);
    let w = Workload::build(Benchmark::Kmeans, cfg.num_chunks, cfg.row_bytes, cfg.seed);
    g.bench_function("kmeans-128-threads", |b| {
        b.iter(|| w.run_functional(&ThreadGrid::paper_default()))
    });
    g.finish();
}

criterion_group!(benches, bench_architectures);
criterion_main!(benches);
