//! Criterion benches of the simulator's own throughput: how fast each
//! architecture model simulates one benchmark. Useful for tracking
//! regressions in the simulation kernels themselves.
//!
//! Gated behind the `bench` feature because the external `criterion` crate
//! is unavailable in the offline build environment. To run: restore
//! `criterion = "0.5"` under `[dev-dependencies]` in `crates/bench` and
//! `cargo bench -p millipede-bench --features bench`.

#[cfg(feature = "bench")]
mod imp {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use millipede_mapreduce::ThreadGrid;
    use millipede_sim::{Arch, SimConfig};
    use millipede_workloads::{Benchmark, Workload};

    fn bench_architectures(c: &mut Criterion) {
        let cfg = SimConfig {
            num_chunks: 4,
            ..Default::default()
        };
        let mut g = c.benchmark_group("simulate-count");
        g.sample_size(10);
        for arch in [
            Arch::Gpgpu,
            Arch::Vws,
            Arch::Ssmc,
            Arch::VwsRow,
            Arch::Millipede,
            Arch::Multicore,
        ] {
            let w = Workload::build(Benchmark::Count, cfg.num_chunks, cfg.row_bytes, cfg.seed);
            g.bench_with_input(BenchmarkId::from_parameter(arch.label()), &w, |b, w| {
                b.iter(|| arch.run(w, &cfg))
            });
        }
        g.finish();

        let mut g = c.benchmark_group("simulate-millipede");
        g.sample_size(10);
        for bench in [
            Benchmark::Count,
            Benchmark::NBayes,
            Benchmark::Kmeans,
            Benchmark::Gda,
        ] {
            let w = Workload::build(bench, cfg.num_chunks, cfg.row_bytes, cfg.seed);
            g.bench_with_input(BenchmarkId::from_parameter(bench.name()), &w, |b, w| {
                b.iter(|| Arch::Millipede.run(w, &cfg))
            });
        }
        g.finish();

        let mut g = c.benchmark_group("functional-engine");
        g.sample_size(20);
        let w = Workload::build(Benchmark::Kmeans, cfg.num_chunks, cfg.row_bytes, cfg.seed);
        g.bench_function("kmeans-128-threads", |b| {
            b.iter(|| w.run_functional(&ThreadGrid::paper_default()))
        });
        g.finish();
    }

    criterion_group!(benches, bench_architectures);
}

#[cfg(feature = "bench")]
fn main() {
    imp::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "bench"))]
fn main() {
    eprintln!("simulator benches are gated behind `--features bench` (requires criterion)");
}
