//! Criterion benches that regenerate paper experiments at reduced scale —
//! `cargo bench` therefore both exercises and documents the full evaluation
//! pipeline. The heavyweight multi-node experiments (Figs. 5/6) are
//! exercised once (not timed) so a full `cargo bench` stays tractable on a
//! small host; the `millipede-bench` binaries regenerate everything at full
//! scale.
//!
//! Gated behind the `bench` feature because the external `criterion` crate
//! is unavailable in the offline build environment. To run: restore
//! `criterion = "0.5"` under `[dev-dependencies]` in `crates/bench` and
//! `cargo bench -p millipede-bench --features bench`.

#[cfg(feature = "bench")]
mod imp {
    use criterion::{criterion_group, Criterion};
    use millipede_sim::{experiments, SimConfig};
    use std::time::Duration;

    fn tiny() -> SimConfig {
        SimConfig {
            num_chunks: 2,
            ..Default::default()
        }
    }

    fn quick() -> SimConfig {
        SimConfig {
            num_chunks: 8,
            ..Default::default()
        }
    }

    fn bench_experiments(c: &mut Criterion) {
        let mut g = c.benchmark_group("experiments");
        g.sample_size(10)
            .warm_up_time(Duration::from_secs(1))
            .measurement_time(Duration::from_secs(8));

        g.bench_function("table4", |b| b.iter(|| experiments::table4::run(&tiny())));
        g.bench_function("fig3", |b| b.iter(|| experiments::fig3::run(&tiny())));
        g.bench_function("fig4", |b| b.iter(|| experiments::fig4::run(&tiny())));
        g.bench_function("fig7", |b| b.iter(|| experiments::fig7::run(&tiny())));
        g.finish();

        // Exercise the remaining experiments once and print the regenerated
        // tables, so `cargo bench` output records the evaluation alongside the
        // timings.
        let cfg = quick();
        println!("\n=== Regenerated tables (8-chunk quick runs) ===\n");
        println!("Table IV\n{}", experiments::table4::run(&cfg).render());
        println!("Fig. 3\n{}", experiments::fig3::run(&cfg).render());
        println!("Fig. 5\n{}", experiments::fig5::run(&cfg).render());
        println!("Fig. 6\n{}", experiments::fig6::run(&cfg).render());
        println!("Fig. 7\n{}", experiments::fig7::run(&cfg).render());
        println!(
            "Rate-matching convergence\n{}",
            experiments::convergence::run(&cfg).render()
        );
    }

    criterion_group!(benches, bench_experiments);
}

#[cfg(feature = "bench")]
fn main() {
    imp::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "bench"))]
fn main() {
    eprintln!("experiment benches are gated behind `--features bench` (requires criterion)");
}
