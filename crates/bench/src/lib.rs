//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts the same optional arguments:
//!
//! ```text
//! <bin> [--chunks N] [--seed S] [--csv] [--profile] [--quiet]
//!       [--trace-out PATH] [--telemetry-epoch CYCLES] [--manifest-out PATH]
//! ```
//!
//! and prints the regenerated table to stdout. `--profile` prints a host
//! wall-time / fast-forward profile of the underlying sweep to **stderr**
//! (stdout stays byte-identical with or without it). `--trace-out` enables
//! cycle-domain telemetry and writes a combined Chrome-trace/Perfetto JSON
//! for the sweep; `--telemetry-epoch` sets the sampling epoch in compute
//! cycles (and also enables telemetry). `--manifest-out` writes a
//! `millipede-manifest/1` JSON (config fingerprint, per-run digests and
//! metrics, host self-profiling) after the sweep; setting
//! `MILLIPEDE_METRICS` prints the same document to stderr without a file.
//! `--quiet` suppresses all stderr reporting. The defaults match
//! `SimConfig::default()` (48 chunks ≈ 1.5–6 MB of input depending on the
//! benchmark's record arity — well past the steady state the paper argues
//! for, §V).

use millipede_metrics::{MetricsConfig, SelfProfile};
use millipede_sim::manifest::ManifestRun;
use millipede_sim::{RunResult, SimConfig, TelemetryConfig};
use std::cell::RefCell;
use std::path::PathBuf;

/// Parsed command-line arguments shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// The simulation configuration (`--chunks`, `--seed`,
    /// `--telemetry-epoch`).
    pub cfg: SimConfig,
    /// Emit CSV instead of an aligned table (`--csv`).
    pub csv: bool,
    /// Print a host wall-time / fast-forward profile to stderr
    /// (`--profile`).
    pub profile: bool,
    /// Suppress all stderr reporting (`--quiet`).
    pub quiet: bool,
    /// Write a Chrome-trace/Perfetto JSON of the sweep's telemetry here
    /// (`--trace-out`; implies telemetry on).
    pub trace_out: Option<PathBuf>,
    /// Write a `millipede-manifest/1` JSON of the sweep here
    /// (`--manifest-out`).
    pub manifest_out: Option<PathBuf>,
    /// Host self-profile opened at parse time: `decode` covers argument
    /// and workload setup, [`report`] closes `run` and opens `report`.
    /// Interior-mutable so the widely-used `report(&Args, ..)` signature
    /// stays unchanged.
    pub selfprof: RefCell<SelfProfile>,
}

/// Parses the common `--chunks` / `--seed` arguments.
pub fn config_from_args() -> SimConfig {
    parse().cfg
}

/// Parses `--chunks`, `--seed`, and `--csv`; the bool is true for CSV
/// output.
pub fn config_and_format_from_args() -> (SimConfig, bool) {
    let a = parse();
    (a.cfg, a.csv)
}

/// Parses all shared arguments: `--chunks`, `--seed`, `--csv`,
/// `--profile`, `--quiet`, `--trace-out`, `--telemetry-epoch`.
pub fn parse() -> Args {
    let mut selfprof = SelfProfile::start();
    selfprof.begin("decode");
    let mut cfg = SimConfig::default();
    let mut csv = false;
    let mut profile = false;
    let mut quiet = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut manifest_out: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--chunks" => {
                i += 1;
                cfg.num_chunks = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chunks needs a positive integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--csv" => csv = true,
            "--profile" => profile = true,
            "--quiet" => quiet = true,
            "--trace-out" => {
                i += 1;
                let path = args
                    .get(i)
                    .filter(|p| !p.is_empty())
                    .unwrap_or_else(|| usage("--trace-out needs a file path"));
                trace_out = Some(PathBuf::from(path));
                cfg.telemetry.enabled = true;
            }
            "--telemetry-epoch" => {
                i += 1;
                let epoch: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&e| e > 0)
                    .unwrap_or_else(|| usage("--telemetry-epoch needs a positive cycle count"));
                cfg.telemetry = TelemetryConfig::enabled_with_epoch(epoch);
            }
            "--manifest-out" => {
                i += 1;
                let path = args
                    .get(i)
                    .filter(|p| !p.is_empty())
                    .unwrap_or_else(|| usage("--manifest-out needs a file path"));
                manifest_out = Some(PathBuf::from(path));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    // Everything from here until report() is the sweep itself.
    selfprof.begin("run");
    Args {
        cfg,
        csv,
        profile,
        quiet,
        trace_out,
        manifest_out,
        selfprof: RefCell::new(selfprof),
    }
}

/// Shared post-sweep reporting: the `--profile` table and the telemetry
/// summary go to stderr (suppressed by `--quiet`; stdout is never
/// touched), the combined Chrome trace is written to `--trace-out` when
/// requested, and the run manifest is written to `--manifest-out` (or
/// printed to stderr under `MILLIPEDE_METRICS` with no path).
pub fn report(args: &Args, runs: &[&RunResult]) {
    args.selfprof.borrow_mut().begin("report");
    if args.profile && !args.quiet {
        eprint!("{}", millipede_sim::report::profile(runs));
    }
    if !args.quiet {
        let summary = millipede_sim::report::telemetry_summary(runs);
        if !summary.is_empty() {
            eprint!("{summary}");
        }
    }
    if let Some(path) = &args.trace_out {
        let trace = millipede_sim::report::chrome_trace(runs);
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("error: could not write trace to {}: {e}", path.display());
            std::process::exit(1);
        }
        if !args.quiet {
            eprintln!("wrote Chrome trace to {}", path.display());
        }
    }
    if args.manifest_out.is_some() || MetricsConfig::from_env().enabled {
        let doc = {
            // Close `report` so its wall is in the manifest, then render
            // outside the borrow (render reads the profile immutably).
            let mut prof = args.selfprof.borrow_mut();
            prof.end();
            let entries: Vec<ManifestRun> = runs
                .iter()
                .map(|r| ManifestRun::new(r, &args.cfg))
                .collect();
            millipede_sim::manifest::render(
                &args.cfg,
                &prof,
                millipede_sim::sweep_threads(),
                &entries,
            )
        };
        match &args.manifest_out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("error: could not write manifest to {}: {e}", path.display());
                    std::process::exit(1);
                }
                if !args.quiet {
                    eprintln!("wrote run manifest to {}", path.display());
                }
            }
            None if !args.quiet => eprint!("{doc}"),
            None => {}
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: <bin> [--chunks N] [--seed S] [--csv] [--profile] [--quiet] \
         [--trace-out PATH] [--telemetry-epoch CYCLES] [--manifest-out PATH]"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_used_without_args() {
        // config_from_args reads real argv; in the test harness there are
        // extra args, so only check the default construction path.
        let cfg = SimConfig::default();
        assert_eq!(cfg.num_chunks, 48);
    }
}
