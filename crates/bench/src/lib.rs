//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts the same optional arguments:
//!
//! ```text
//! <bin> [--chunks N] [--seed S] [--csv] [--profile]
//! ```
//!
//! and prints the regenerated table to stdout. `--profile` prints a host
//! wall-time / fast-forward profile of the underlying sweep to **stderr**
//! (stdout stays byte-identical with or without it). The defaults match
//! `SimConfig::default()` (48 chunks ≈ 1.5–6 MB of input depending on the
//! benchmark's record arity — well past the steady state the paper argues
//! for, §V).

use millipede_sim::SimConfig;

/// Parsed command-line arguments shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// The simulation configuration (`--chunks`, `--seed`).
    pub cfg: SimConfig,
    /// Emit CSV instead of an aligned table (`--csv`).
    pub csv: bool,
    /// Print a host wall-time / fast-forward profile to stderr
    /// (`--profile`).
    pub profile: bool,
}

/// Parses the common `--chunks` / `--seed` arguments.
pub fn config_from_args() -> SimConfig {
    parse().cfg
}

/// Parses `--chunks`, `--seed`, and `--csv`; the bool is true for CSV
/// output.
pub fn config_and_format_from_args() -> (SimConfig, bool) {
    let a = parse();
    (a.cfg, a.csv)
}

/// Parses all shared arguments: `--chunks`, `--seed`, `--csv`,
/// `--profile`.
pub fn parse() -> Args {
    let mut cfg = SimConfig::default();
    let mut csv = false;
    let mut profile = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--chunks" => {
                i += 1;
                cfg.num_chunks = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chunks needs a positive integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--csv" => csv = true,
            "--profile" => profile = true,
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Args { cfg, csv, profile }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: <bin> [--chunks N] [--seed S] [--csv] [--profile]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_used_without_args() {
        // config_from_args reads real argv; in the test harness there are
        // extra args, so only check the default construction path.
        let cfg = SimConfig::default();
        assert_eq!(cfg.num_chunks, 48);
    }
}
