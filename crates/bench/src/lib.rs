//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts the same two optional arguments:
//!
//! ```text
//! <bin> [--chunks N] [--seed S]
//! ```
//!
//! and prints the regenerated table to stdout. The defaults match
//! `SimConfig::default()` (48 chunks ≈ 1.5–6 MB of input depending on the
//! benchmark's record arity — well past the steady state the paper argues
//! for, §V).

use millipede_sim::SimConfig;

/// Parses the common `--chunks` / `--seed` arguments.
pub fn config_from_args() -> SimConfig {
    config_and_format_from_args().0
}

/// Parses `--chunks`, `--seed`, and `--csv`; the bool is true for CSV
/// output.
pub fn config_and_format_from_args() -> (SimConfig, bool) {
    let mut cfg = SimConfig::default();
    let mut csv = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--chunks" => {
                i += 1;
                cfg.num_chunks = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chunks needs a positive integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--csv" => csv = true,
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    (cfg, csv)
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: <bin> [--chunks N] [--seed S] [--csv]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_used_without_args() {
        // config_from_args reads real argv; in the test harness there are
        // extra args, so only check the default construction path.
        let cfg = SimConfig::default();
        assert_eq!(cfg.num_chunks, 48);
    }
}
