//! Regenerates Table III — hardware parameters.
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!("Table III — Hardware parameters\n");
    println!("{}", millipede_sim::experiments::table3::render(&cfg));
}
