//! Regenerates Fig. 6 — speedup versus system size.
fn main() {
    let args = millipede_bench::parse();
    let fig = millipede_sim::experiments::fig6::run(&args.cfg);
    println!(
        "Fig. 6 — Speedup vs system size (normalized to 32-lane GPGPU, {} chunks)\n",
        args.cfg.num_chunks
    );
    println!("{}", fig.render());
    let runs: Vec<_> = fig.runs.iter().flatten().flatten().collect();
    millipede_bench::report(&args, &runs);
}
