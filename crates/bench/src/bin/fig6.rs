//! Regenerates Fig. 6 — speedup versus system size.
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!(
        "Fig. 6 — Speedup vs system size (normalized to 32-lane GPGPU, {} chunks)\n",
        cfg.num_chunks
    );
    println!("{}", millipede_sim::experiments::fig6::run(&cfg).render());
}
