//! Regenerates Fig. 4 — energy breakdown normalized to GPGPU.
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!(
        "Fig. 4 — Energy (relative to GPGPU; stacked core/dram/static, {} chunks)\n",
        cfg.num_chunks
    );
    println!("{}", millipede_sim::experiments::fig4::run(&cfg).render());
}
