//! Regenerates Fig. 4 — energy breakdown normalized to GPGPU.
fn main() {
    let args = millipede_bench::parse();
    let fig = millipede_sim::experiments::fig4::run(&args.cfg);
    println!(
        "Fig. 4 — Energy (relative to GPGPU; stacked core/dram/static, {} chunks)\n",
        args.cfg.num_chunks
    );
    println!("{}", fig.render());
    let runs: Vec<_> = fig.runs.iter().flatten().collect();
    millipede_bench::report(&args, &runs);
}
