//! Regenerates Table II — summary of application behaviour.
fn main() {
    let _ = millipede_bench::config_from_args();
    println!("Table II — Summary of application behavior\n");
    println!("{}", millipede_sim::experiments::table2::render());
}
