//! Regenerates Fig. 7 — speedup versus prefetch-buffer count.
fn main() {
    let (cfg, csv) = millipede_bench::config_and_format_from_args();
    let fig = millipede_sim::experiments::fig7::run(&cfg);
    if csv {
        print!("{}", fig.to_csv());
    } else {
        println!("Fig. 7 — Millipede speedup vs prefetch-buffer count (normalized to 2 entries, {} chunks)\n", cfg.num_chunks);
        println!("{}", fig.render());
    }
}
