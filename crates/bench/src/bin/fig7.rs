//! Regenerates Fig. 7 — speedup versus prefetch-buffer count.
fn main() {
    let args = millipede_bench::parse();
    let fig = millipede_sim::experiments::fig7::run(&args.cfg);
    if args.csv {
        print!("{}", fig.to_csv());
    } else {
        println!("Fig. 7 — Millipede speedup vs prefetch-buffer count (normalized to 2 entries, {} chunks)\n", args.cfg.num_chunks);
        println!("{}", fig.render());
    }
    let runs: Vec<_> = fig.runs.iter().flatten().collect();
    millipede_bench::report(&args, &runs);
}
