//! Regenerates Fig. 3 — performance normalized to GPGPU.
fn main() {
    let (cfg, csv) = millipede_bench::config_and_format_from_args();
    let fig = millipede_sim::experiments::fig3::run(&cfg);
    if csv {
        print!("{}", fig.to_csv());
    } else {
        println!(
            "Fig. 3 — Performance (speedup over GPGPU, {} chunks)\n",
            cfg.num_chunks
        );
        println!("{}", fig.render());
    }
}
