//! Regenerates Fig. 3 — performance normalized to GPGPU.
fn main() {
    let args = millipede_bench::parse();
    let fig = millipede_sim::experiments::fig3::run(&args.cfg);
    if args.csv {
        print!("{}", fig.to_csv());
    } else {
        println!(
            "Fig. 3 — Performance (speedup over GPGPU, {} chunks)\n",
            args.cfg.num_chunks
        );
        println!("{}", fig.render());
    }
    let runs: Vec<_> = fig.runs.iter().flatten().collect();
    millipede_bench::report(&args, &runs);
}
