//! Regenerates Fig. 5 — Millipede versus the conventional multicore.
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!(
        "Fig. 5 — 32-processor Millipede vs 8-core OoO multicore ({} chunks)\n",
        cfg.num_chunks
    );
    println!("{}", millipede_sim::experiments::fig5::run(&cfg).render());
}
