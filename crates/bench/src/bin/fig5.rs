//! Regenerates Fig. 5 — Millipede versus the conventional multicore.
fn main() {
    let args = millipede_bench::parse();
    let start = std::time::Instant::now();
    let fig = millipede_sim::experiments::fig5::run(&args.cfg);
    let wall = start.elapsed();
    println!(
        "Fig. 5 — 32-processor Millipede vs 8-core OoO multicore ({} chunks)\n",
        args.cfg.num_chunks
    );
    println!("{}", fig.render());
    if args.profile && !args.quiet {
        // Fig. 5 simulates whole 32-node systems, not single sweep points,
        // so only the section wall time is meaningful here.
        eprintln!("fig5 wall: {:.1} ms", wall.as_secs_f64() * 1e3);
    }
}
