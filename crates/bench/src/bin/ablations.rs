//! Regenerates the ablation studies beyond the paper's figures (DESIGN.md):
//! software barriers vs flow control, FR-FCFS queue depth, banks per
//! channel, and the channel-width boundedness sweep.
fn main() {
    let args = millipede_bench::parse();
    println!(
        "Ablations ({} chunks, seed {})\n",
        args.cfg.num_chunks, args.cfg.seed
    );
    let start = std::time::Instant::now();
    let rendered = millipede_sim::experiments::ablations::render_all(&args.cfg);
    let wall = start.elapsed();
    println!("{rendered}");
    if args.profile && !args.quiet {
        // The ablations drive the architecture models directly (no
        // RunResult sweep), so only the section wall time is meaningful.
        eprintln!("ablations wall: {:.1} ms", wall.as_secs_f64() * 1e3);
    }
}
