//! Regenerates the ablation studies beyond the paper's figures (DESIGN.md):
//! software barriers vs flow control, FR-FCFS queue depth, banks per
//! channel, and the channel-width boundedness sweep.
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!("Ablations ({} chunks, seed {})\n", cfg.num_chunks, cfg.seed);
    println!(
        "{}",
        millipede_sim::experiments::ablations::render_all(&cfg)
    );
}
