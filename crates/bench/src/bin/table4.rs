//! Regenerates Table IV — benchmark parameters and characteristics.
fn main() {
    let args = millipede_bench::parse();
    let t = millipede_sim::experiments::table4::run(&args.cfg);
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        println!(
            "Table IV — Benchmark parameters and characteristics ({} chunks)\n",
            args.cfg.num_chunks
        );
        println!("{}", t.render());
    }
    let runs: Vec<_> = t.runs.iter().collect();
    millipede_bench::report(&args, &runs);
}
