//! Regenerates Table IV — benchmark parameters and characteristics.
fn main() {
    let (cfg, csv) = millipede_bench::config_and_format_from_args();
    let t = millipede_sim::experiments::table4::run(&cfg);
    if csv {
        print!("{}", t.to_csv());
    } else {
        println!(
            "Table IV — Benchmark parameters and characteristics ({} chunks)\n",
            cfg.num_chunks
        );
        println!("{}", t.render());
    }
}
