//! Regenerates the workload-families comparison — the graph and dense
//! benchmarks across all Fig. 3 architecture variants (speedup and energy
//! relative to GPGPU; see EXPERIMENTS.md, "Workload families").
fn main() {
    let args = millipede_bench::parse();
    let fam = millipede_sim::experiments::families::run(&args.cfg);
    if args.csv {
        print!("{}", fam.to_csv());
    } else {
        println!(
            "Workload families — graph + dense vs the paper's architectures \
             ({} chunks)\n",
            args.cfg.num_chunks
        );
        println!("{}", fam.render());
    }
    let runs: Vec<_> = fam.runs.iter().flatten().collect();
    millipede_bench::report(&args, &runs);
}
