//! Regenerates the full evaluation: every table and figure in sequence.
//!
//! `--profile` prints per-section wall times (and per-point sweep profiles
//! for the sections that retain their runs) to stderr; stdout is
//! byte-identical with or without it.

use std::time::Instant;

/// Runs one section, returning its result and printing the section wall
/// time to stderr when profiling.
fn section<T>(profile: bool, name: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    if profile {
        eprintln!("{name} wall: {:.1} ms", start.elapsed().as_secs_f64() * 1e3);
    }
    out
}

fn main() {
    let args = millipede_bench::parse();
    let cfg = &args.cfg;
    let profile = args.profile && !args.quiet;
    let total = Instant::now();
    println!(
        "Millipede reproduction — full evaluation ({} chunks, seed {})\n",
        cfg.num_chunks, cfg.seed
    );
    println!("Table II — Summary of application behavior\n");
    println!("{}", millipede_sim::experiments::table2::render());
    println!("Table III — Hardware parameters\n");
    println!("{}", millipede_sim::experiments::table3::render(cfg));
    println!("Table IV — Benchmark parameters and characteristics\n");
    let t4 = section(profile, "table4", || {
        millipede_sim::experiments::table4::run(cfg)
    });
    println!("{}", t4.render());
    println!("Fig. 3 — Performance (speedup over GPGPU)\n");
    let f3 = section(profile, "fig3", || {
        millipede_sim::experiments::fig3::run(cfg)
    });
    println!("{}", f3.render());
    {
        // Per-point profile, telemetry summary, and `--trace-out` cover the
        // Fig. 3 sweep — the one section that retains its runs.
        let runs: Vec<_> = f3.runs.iter().flatten().collect();
        millipede_bench::report(&args, &runs);
    }
    println!("Fig. 4 — Energy (relative to GPGPU)\n");
    let f4 = section(profile, "fig4", || {
        millipede_sim::experiments::fig4::run(cfg)
    });
    println!("{}", f4.render());
    println!("Fig. 5 — Millipede vs conventional multicore\n");
    let f5 = section(profile, "fig5", || {
        millipede_sim::experiments::fig5::run(cfg)
    });
    println!("{}", f5.render());
    println!("Fig. 6 — Speedup vs system size\n");
    let f6 = section(profile, "fig6", || {
        millipede_sim::experiments::fig6::run(cfg)
    });
    println!("{}", f6.render());
    println!("Fig. 7 — Speedup vs prefetch-buffer count\n");
    let f7 = section(profile, "fig7", || {
        millipede_sim::experiments::fig7::run(cfg)
    });
    println!("{}", f7.render());
    println!("Workload families — graph + dense (beyond the paper's set)\n");
    let fam = section(profile, "families", || {
        millipede_sim::experiments::families::run(cfg)
    });
    println!("{}", fam.render());
    println!("Rate-matching convergence (§IV-F)\n");
    let conv = section(profile, "convergence", || {
        millipede_sim::experiments::convergence::run(cfg)
    });
    println!("{}", conv.render());
    println!("Ablations (beyond the paper's figures)\n");
    let abl = section(profile, "ablations", || {
        millipede_sim::experiments::ablations::render_all(cfg)
    });
    println!("{abl}");
    if profile {
        eprintln!(
            "total wall: {:.1} ms ({} sweep workers)",
            total.elapsed().as_secs_f64() * 1e3,
            millipede_sim::sweep_threads()
        );
    }
}
