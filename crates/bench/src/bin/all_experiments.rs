//! Regenerates the full evaluation: every table and figure in sequence.
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!(
        "Millipede reproduction — full evaluation ({} chunks, seed {})\n",
        cfg.num_chunks, cfg.seed
    );
    println!("Table II — Summary of application behavior\n");
    println!("{}", millipede_sim::experiments::table2::render());
    println!("Table III — Hardware parameters\n");
    println!("{}", millipede_sim::experiments::table3::render(&cfg));
    println!("Table IV — Benchmark parameters and characteristics\n");
    println!("{}", millipede_sim::experiments::table4::run(&cfg).render());
    println!("Fig. 3 — Performance (speedup over GPGPU)\n");
    println!("{}", millipede_sim::experiments::fig3::run(&cfg).render());
    println!("Fig. 4 — Energy (relative to GPGPU)\n");
    println!("{}", millipede_sim::experiments::fig4::run(&cfg).render());
    println!("Fig. 5 — Millipede vs conventional multicore\n");
    println!("{}", millipede_sim::experiments::fig5::run(&cfg).render());
    println!("Fig. 6 — Speedup vs system size\n");
    println!("{}", millipede_sim::experiments::fig6::run(&cfg).render());
    println!("Fig. 7 — Speedup vs prefetch-buffer count\n");
    println!("{}", millipede_sim::experiments::fig7::run(&cfg).render());
    println!("Rate-matching convergence (§IV-F)\n");
    println!(
        "{}",
        millipede_sim::experiments::convergence::run(&cfg).render()
    );
    println!("Ablations (beyond the paper's figures)\n");
    println!(
        "{}",
        millipede_sim::experiments::ablations::render_all(&cfg)
    );
}
