//! Reports the rate-matching DFS convergence traces (§IV-F of the paper).
fn main() {
    let cfg = millipede_bench::config_from_args();
    println!(
        "Rate-matching convergence ({} chunks, seed {})\n",
        cfg.num_chunks, cfg.seed
    );
    println!(
        "{}",
        millipede_sim::experiments::convergence::run(&cfg).render()
    );
}
