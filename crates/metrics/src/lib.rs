//! Hierarchical metrics registry for the Millipede simulators.
//!
//! Three pieces, all host-side and purely observational:
//!
//! 1. **The registry** ([`Registry`]): typed counters, gauges, and
//!    histograms keyed by stable dotted names (`millipede.stats.
//!    instructions`, `host.sweep.utilization`). Read-out order is name
//!    order (a `BTreeMap`), never insertion or hash order.
//! 2. **A strict JSON layer** ([`json`]): a dependency-free parser and the
//!    escaping/number-formatting helpers every manifest writer and the
//!    `millipede-cli report` reader share.
//! 3. **Host self-profiling** ([`selfprof`]): wall-clock phase timers
//!    (decode/run/report) for the run manifest. That module is the one
//!    sanctioned wall-clock consumer in this crate — the `wall-clock`
//!    audit lint covers `crates/metrics` and exempts only
//!    `src/selfprof.rs`.
//!
//! Determinism contract: nothing in this crate is ever read back by a
//! timing model. Registries are populated *from* finished results, so
//! metrics are digest-invisible by construction (the determinism digest
//! hashes `RunResult` fields, not registries; pinned by
//! `tests/manifest.rs`). The `MILLIPEDE_METRICS` knob follows the repo's
//! boolean-env rule (`millipede_sim::config::env_flag`; restated here
//! because this crate is dependency-free).

#![warn(missing_docs)]

pub mod json;
pub mod selfprof;

pub use selfprof::SelfProfile;

use std::collections::BTreeMap;
use std::fmt;

/// A histogram summary: count, sum, and range of observed values.
///
/// Deliberately bucket-free — the registry's histograms summarize
/// host-side latencies (per-point sweep walls), where min/median/max are
/// computed by the manifest layer from the raw series and the registry
/// keeps the streaming summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Folds one observation into the summary.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One typed metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Distribution summary.
    Histogram(Histogram),
}

/// A name-ordered registry of typed metrics.
///
/// Names are dotted paths of lowercase `[a-z0-9_-]` segments; registering
/// under an invalid name, or re-registering a name with a different type,
/// panics — both are programming errors, not data errors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: BTreeMap<String, Metric>,
}

/// Whether `name` is a valid dotted metric path: non-empty lowercase
/// `[a-z0-9_-]` segments separated by single dots.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        })
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or if `name` is registered as a
    /// different metric type.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `value`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or if `name` is registered as a
    /// different metric type.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Folds `value` into the histogram `name`, creating it empty first.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or if `name` is registered as a
    /// different metric type.
    pub fn observe(&mut self, name: &str, value: f64) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name)
    }

    /// The registered metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the registry as one JSON object, keys in name order.
    /// Counters render as integers, gauges as numbers, histograms as
    /// `{count, sum, min, max}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", json::escape(name)));
            match metric {
                Metric::Counter(v) => out.push_str(&v.to_string()),
                Metric::Gauge(v) => out.push_str(&json::fmt_f64(*v)),
                Metric::Histogram(h) => out.push_str(&format!(
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    h.count,
                    json::fmt_f64(h.sum),
                    json::fmt_f64(h.min),
                    json::fmt_f64(h.max)
                )),
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(v) => writeln!(f, "{name} = {v}")?,
                Metric::Gauge(v) => writeln!(f, "{name} = {v}")?,
                Metric::Histogram(h) => writeln!(
                    f,
                    "{name} = n={} mean={:.3} min={:.3} max={:.3}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                )?,
            }
        }
        Ok(())
    }
}

/// Configuration of the metrics layer for one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsConfig {
    /// Collect registries and emit manifests even without `--manifest-out`.
    pub enabled: bool,
}

impl MetricsConfig {
    /// Reads the `MILLIPEDE_METRICS` environment switch, following the
    /// repo-wide boolean-knob rule (`millipede_sim::config::env_flag`;
    /// restated here because this crate is dependency-free): unset, empty,
    /// or `0` leaves metrics collection off; any other value enables it.
    pub fn from_env() -> Self {
        let enabled = std::env::var("MILLIPEDE_METRICS").is_ok_and(|v| !v.is_empty() && v != "0");
        MetricsConfig { enabled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let mut r = Registry::new();
        r.counter_add("b.two", 2);
        r.counter_add("a.one", 1);
        r.counter_add("b.two", 3);
        assert_eq!(r.get("b.two"), Some(&Metric::Counter(5)));
        assert_eq!(r.to_json(), "{\"a.one\":1,\"b.two\":5}");
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge_set("host.util", 0.25);
        r.gauge_set("host.util", 0.5);
        assert_eq!(r.get("host.util"), Some(&Metric::Gauge(0.5)));
    }

    #[test]
    fn histograms_summarize() {
        let mut r = Registry::new();
        for v in [3.0, 1.0, 2.0] {
            r.observe("lat.ms", v);
        }
        let Some(Metric::Histogram(h)) = r.get("lat.ms") else {
            panic!("not a histogram");
        };
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = Registry::new();
        r.gauge_set("x.y", 1.0);
        r.counter_add("x.y", 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        Registry::new().counter_add("Bad.Name", 1);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("a.b_c.d-1"));
        assert!(valid_name("vws-row.stats.instructions"));
        assert!(!valid_name(""));
        assert!(!valid_name("a..b"));
        assert!(!valid_name(".a"));
        assert!(!valid_name("a.B"));
        assert!(!valid_name("a b"));
    }

    #[test]
    fn registry_json_reparses() {
        let mut r = Registry::new();
        r.counter_add("c.n", 7);
        r.gauge_set("g.v", 1.5);
        r.observe("h.x", 2.0);
        let doc = json::Json::parse(&r.to_json()).expect("valid json");
        assert_eq!(doc.get("c.n").and_then(json::Json::as_f64), Some(7.0));
        assert_eq!(doc.get("g.v").and_then(json::Json::as_f64), Some(1.5));
        assert_eq!(
            doc.get("h.x")
                .and_then(|h| h.get("count"))
                .and_then(json::Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn metrics_config_default_is_off() {
        assert!(!MetricsConfig::default().enabled);
    }
}
