//! Host-side self-profiling: wall-clock phase timers for run manifests.
//!
//! This module is the **one sanctioned wall-clock consumer** in
//! `crates/metrics`: the `wall-clock` audit lint covers this crate and
//! exempts exactly this file. Everything recorded here describes what a
//! run cost the *host* (decode/run/report phase walls, from which the
//! manifest derives retired-instructions/sec and events/sec); none of it
//! ever feeds back into simulated time or determinism digests.

use std::time::Instant;

/// Wall-clock phase profile of one driver process.
///
/// Phases are sequential and non-overlapping: [`SelfProfile::begin`]
/// closes the running phase and opens the next, so a driver marks
/// transitions (`decode` → `run` → `report`) without pairing calls.
/// Re-entering a phase name accumulates into it.
#[derive(Debug, Clone)]
pub struct SelfProfile {
    started: Instant,
    /// Closed phases as `(name, milliseconds)`, in first-open order.
    phases: Vec<(&'static str, f64)>,
    current: Option<(&'static str, Instant)>,
}

impl SelfProfile {
    /// Starts the profile clock with no phase open.
    pub fn start() -> SelfProfile {
        SelfProfile {
            started: Instant::now(),
            phases: Vec::new(),
            current: None,
        }
    }

    /// Closes the running phase (if any) and opens `phase`.
    pub fn begin(&mut self, phase: &'static str) {
        self.end();
        self.current = Some((phase, Instant::now()));
    }

    /// Closes the running phase (if any).
    pub fn end(&mut self) {
        if let Some((name, since)) = self.current.take() {
            let ms = since.elapsed().as_secs_f64() * 1e3;
            match self.phases.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += ms,
                None => self.phases.push((name, ms)),
            }
        }
    }

    /// Total milliseconds accumulated in `phase` (0 if never opened);
    /// includes the running phase.
    pub fn phase_ms(&self, phase: &str) -> f64 {
        let closed = self
            .phases
            .iter()
            .find(|(n, _)| *n == phase)
            .map_or(0.0, |(_, ms)| *ms);
        let open = match &self.current {
            Some((name, since)) if *name == phase => since.elapsed().as_secs_f64() * 1e3,
            _ => 0.0,
        };
        closed + open
    }

    /// The closed phases as `(name, milliseconds)`, in first-open order.
    pub fn phases(&self) -> &[(&'static str, f64)] {
        &self.phases
    }

    /// Milliseconds since the profile started.
    pub fn total_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }
}

impl Default for SelfProfile {
    fn default() -> Self {
        SelfProfile::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_open_order() {
        let mut p = SelfProfile::start();
        p.begin("decode");
        p.begin("run");
        p.begin("report");
        p.end();
        let names: Vec<&str> = p.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["decode", "run", "report"]);
        assert!(p.phases().iter().all(|(_, ms)| *ms >= 0.0));
    }

    #[test]
    fn reentered_phase_accumulates() {
        let mut p = SelfProfile::start();
        p.begin("run");
        p.begin("report");
        p.begin("run");
        p.end();
        assert_eq!(p.phases().len(), 2);
        assert!(p.phase_ms("run") >= 0.0);
    }

    #[test]
    fn open_phase_counts_toward_phase_ms() {
        let mut p = SelfProfile::start();
        p.begin("run");
        assert!(p.phase_ms("run") >= 0.0);
        assert_eq!(p.phase_ms("decode"), 0.0);
        assert!(p.total_ms() >= 0.0);
    }
}
