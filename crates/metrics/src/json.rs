//! Minimal strict JSON layer shared by manifest writers and readers.
//!
//! The workspace is fully offline (no serde), so manifests are written
//! with `format!` and read back with this recursive-descent parser. The
//! parser is strict — no trailing commas, no comments, no unquoted keys —
//! so anything it accepts, an external JSON tool accepts too. Object key
//! order is preserved (a `Vec` of pairs) so `millipede-cli report` renders
//! documents in the order the writer chose.

use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: src.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing content at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(char::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .peek()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| "bad \\u escape".to_string())?;
                                self.pos += 1;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other}`")),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at offset {start}: {e}"))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a valid JSON number; non-finite values (which JSON
/// cannot represent) render as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Json::parse(
            r#"{"schema":"millipede-manifest/1","n":3,"neg":-1.5e2,
                "ok":true,"none":null,"arr":[1,2,{"k":"v"}]}"#,
        )
        .expect("valid");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("millipede-manifest/1")
        );
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        let arr = doc.get("arr").and_then(Json::as_array).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("k").and_then(Json::as_str), Some("v"));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let doc = Json::parse(r#"{"z":1,"a":2}"#).expect("valid");
        let keys: Vec<&str> = doc
            .as_object()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\none\ttab \"quote\" back\\slash";
        let rendered = format!("{{\"s\":\"{}\"}}", escape(original));
        let doc = Json::parse(&rendered).expect("valid");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn unicode_escape_parses() {
        let doc = Json::parse(r#"{"s":"Aé"}"#).expect("valid");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":1} extra",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn fmt_f64_emits_valid_numbers() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let parsed = Json::parse(&fmt_f64(0.1)).expect("valid");
        assert_eq!(parsed.as_f64(), Some(0.1));
    }
}
