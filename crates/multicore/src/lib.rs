//! Conventional out-of-order multicore reference (Fig. 5 of the paper).
//!
//! The paper compares a 32-processor Millipede system against an 8-core
//! Xeon-like machine: 4-wide out-of-order issue, 4-way SMT, 3.6 GHz,
//! 64 KB L1 + 1 MB L2 per core, and *off-chip* memory at one quarter of the
//! die-stacked system's aggregate bandwidth at 70 pJ/bit \[44\]. The paper
//! itself caveats this comparison: "the far fewer compute threads in the
//! multicore (32) compared to those in Millipede (4096) account for most of
//! the speedups", and the energy gap is dominated by off-chip DRAM energy
//! and the high clock.
//!
//! Because those first-order effects — thread count, effective issue
//! throughput, and memory bandwidth/energy — fully determine the result,
//! this model is deliberately *coarse* (documented in DESIGN.md): it uses
//! the workload's measured dynamic instruction profile and bounds runtime
//! by both compute throughput and off-chip bandwidth, rather than
//! simulating an out-of-order pipeline cycle by cycle. The kernels are
//! executed functionally, so the output is still validated bit-for-bit.

#![warn(missing_docs)]

use millipede_core::NodeResult;
use millipede_dram::DramStats;
use millipede_engine::{
    run_functional, CoreStats, FuncStats, Instrumented, TimePs, WheelProfile, DEFAULT_STEP_LIMIT,
};
use millipede_mapreduce::ThreadGrid;
use millipede_telemetry::{Telemetry, TelemetryConfig};
use millipede_workloads::Workload;

/// Instrumentation view over the analytic model's results, implementing the
/// shared [`Instrumented`] contract. The model has no cycle loop, so epoch
/// samples linearly interpolate the end-of-run totals between the run's
/// start and end anchors (enough to give the run a labelled span in a
/// combined Chrome trace), and there are no timing audits to check.
struct Model<'a> {
    stats: &'a CoreStats,
    dram: &'a DramStats,
    /// Total modelled cycles; epoch samples scale counters by `due / end`.
    end_cycle: u64,
}

impl Instrumented for Model<'_> {
    fn prefix(&self) -> &'static str {
        "multicore"
    }

    // No quiescence loop to guard: the fingerprint is just the run's
    // dynamic instruction count, a stable identity for the manifest layer.
    fn fingerprint(&self) -> u64 {
        self.stats.instructions
    }

    fn sample_epoch(&self, tel: &mut Telemetry, due: u64, at: TimePs, _rewind: u64) {
        let frac = if self.end_cycle == 0 {
            1.0
        } else {
            due as f64 / self.end_cycle as f64
        };
        tel.counter(
            "multicore::core",
            "instructions",
            due,
            at,
            self.stats.instructions as f64 * frac,
        );
        tel.counter(
            "multicore::dram",
            "bytes_transferred",
            due,
            at,
            self.dram.bytes_transferred as f64 * frac,
        );
    }

    fn assert_clean(&self) {}
}

/// Configuration of the Xeon-like reference machine (§VI-C defaults).
#[derive(Debug, Clone)]
pub struct MulticoreConfig {
    /// Cores (paper: 8).
    pub cores: usize,
    /// SMT contexts per core (paper: 4).
    pub smt: usize,
    /// Clock in MHz (paper: 3.6 GHz).
    pub clock_mhz: f64,
    /// Issue width per core (paper: 4-wide OoO).
    pub issue_width: f64,
    /// Effective sustained IPC per core on these streaming kernels, as a
    /// fraction of issue width. BMLA inner loops are short dependence
    /// chains with one load per few instructions; half the peak is a
    /// generous sustained estimate for a 4-wide OoO core.
    pub ipc_efficiency: f64,
    /// Off-chip memory bandwidth in GB/s (paper: ¼ of the die-stacked
    /// system's 32 channels).
    pub mem_bw_gbps: f64,
    /// Off-chip access energy in pJ/bit (paper: 70 pJ/bit \[44\]).
    pub mem_pj_per_bit: f64,
    /// Cycle-domain telemetry (off by default). The analytic model has no
    /// cycle loop, so only coarse start/end samples are recorded.
    pub telemetry: TelemetryConfig,
}

impl Default for MulticoreConfig {
    fn default() -> Self {
        MulticoreConfig {
            cores: 8,
            smt: 4,
            clock_mhz: 3600.0,
            issue_width: 4.0,
            ipc_efficiency: 0.5,
            // 32 die-stacked channels × 4.8 GB/s ÷ 4.
            mem_bw_gbps: 32.0 * 4.8 / 4.0,
            mem_pj_per_bit: 70.0,
            telemetry: TelemetryConfig::from_env(),
        }
    }
}

impl MulticoreConfig {
    /// Hardware threads.
    pub fn threads(&self) -> usize {
        self.cores * self.smt
    }

    /// Sustained instruction throughput in instructions per nanosecond.
    pub fn throughput_per_ns(&self) -> f64 {
        self.cores as f64 * self.issue_width * self.ipc_efficiency * self.clock_mhz / 1000.0
    }
}

/// Runs `workload` on the multicore reference: functional execution for
/// output correctness, bounded-throughput timing for performance.
pub fn run(workload: &Workload, cfg: &MulticoreConfig) -> NodeResult {
    // Execute functionally on the standard grid (the dynamic instruction
    // profile is assignment-independent: same records, same work).
    let grid = ThreadGrid::paper_default();
    let mut totals = FuncStats::default();
    let mut ctxs = Vec::with_capacity(grid.num_threads());
    for corelet in 0..grid.corelets {
        for context in 0..grid.contexts {
            let mut ctx = workload.make_ctx(&grid, corelet, context);
            let s = run_functional(
                &mut ctx,
                &workload.program,
                &workload.dataset.image,
                DEFAULT_STEP_LIMIT,
            )
            .expect("kernel must not trap"); // audit:allow(unwrap-in-hot-path): a trapping kernel is a workload bug; fail loudly
            totals.merge(&s);
            ctxs.push(ctx);
        }
    }

    // Runtime: the slower of compute throughput and off-chip bandwidth.
    let compute_ns = totals.instructions as f64 / cfg.throughput_per_ns();
    let bytes = workload.dataset.total_bytes();
    let memory_ns = bytes as f64 / cfg.mem_bw_gbps; // GB/s == bytes/ns
    let elapsed_ns = compute_ns.max(memory_ns);

    let states: Vec<&[u32]> = ctxs.iter().map(|c| c.local.words()).collect();
    let output = workload.reduce(&states);
    let output_ok = output == workload.reference(&grid);

    let stats = CoreStats {
        instructions: totals.instructions,
        issues: totals.instructions,
        branches: totals.branches,
        input_loads: totals.input_words,
        local_loads: totals.local_loads,
        local_stores: totals.local_stores,
        // audit:allow(cast-truncation): analytic model; sub-cycle truncation is immaterial
        compute_cycles: (elapsed_ns * cfg.clock_mhz / 1000.0) as u64,
        // audit:allow(cast-truncation): analytic model; sub-cycle truncation is immaterial
        issue_slots: ((elapsed_ns * cfg.clock_mhz / 1000.0) as u64)
            .saturating_mul(cfg.cores as u64),
        ..Default::default()
    };
    let dram = DramStats {
        bytes_transferred: bytes,
        // Open-page streaming on a conventional controller: approximate one
        // activation per 2 KB of streamed data.
        activations: bytes / 2048,
        row_hits: bytes / 64,
        requests: bytes / 64,
        ..Default::default()
    };
    // audit:allow(cast-truncation): sub-picosecond truncation of an analytic runtime
    let elapsed_ps = (elapsed_ns * 1000.0) as u64;
    // Coarse telemetry: the analytic model has no cycle loop, so the
    // series are just their start/end points (still enough to give the
    // run a labelled span in a combined Chrome trace).
    let mut tel = Telemetry::new(&cfg.telemetry);
    if tel.enabled() {
        let model = Model {
            stats: &stats,
            dram: &dram,
            end_cycle: stats.compute_cycles,
        };
        model.sample_epoch(&mut tel, 0, 0, 0);
        model.sample_epoch(&mut tel, stats.compute_cycles, elapsed_ps, 0);
        model.assert_clean();
    }
    NodeResult {
        stats,
        dram,
        elapsed_ps,
        output,
        output_ok,
        telemetry: tel,
        profile: WheelProfile::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millipede_workloads::{Benchmark, Workload};

    #[test]
    fn defaults_match_paper() {
        let c = MulticoreConfig::default();
        assert_eq!(c.threads(), 32);
        assert!((c.mem_bw_gbps - 38.4).abs() < 1e-9);
        assert!((c.clock_mhz - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn runs_and_validates() {
        let w = Workload::build(Benchmark::Count, 2, 2048, 7);
        let r = run(&w, &MulticoreConfig::default());
        assert!(r.output_ok);
        assert!(r.elapsed_ps > 0);
        assert_eq!(r.dram.bytes_transferred, w.dataset.total_bytes());
    }

    #[test]
    fn heavier_kernels_achieve_lower_bandwidth() {
        // With our kernels' instruction densities the 32-thread multicore
        // is compute-bound throughout; bandwidth utilization falls with
        // instructions per word.
        let cfg = MulticoreConfig::default();
        let count = run(&Workload::build(Benchmark::Count, 4, 2048, 7), &cfg);
        let gda = run(&Workload::build(Benchmark::Gda, 4, 2048, 7), &cfg);
        let count_bw = count.dram.bytes_transferred as f64 / (count.elapsed_ps as f64 / 1000.0);
        let gda_bw = gda.dram.bytes_transferred as f64 / (gda.elapsed_ps as f64 / 1000.0);
        assert!(count_bw <= cfg.mem_bw_gbps + 1e-9);
        assert!(gda_bw < count_bw, "gda {gda_bw} vs count {count_bw}");
    }

    #[test]
    fn throughput_model() {
        let cfg = MulticoreConfig::default();
        // 8 cores × 4-wide × 0.5 × 3.6 GHz = 57.6 inst/ns.
        assert!((cfg.throughput_per_ns() - 57.6).abs() < 1e-9);
    }
}
