#!/usr/bin/env bash
# Offline-safe CI gate: formatting, the repo-specific lint pass, a release
# build, and the full test suite (which includes the invariant-sanitizer and
# determinism gates in tests/audit.rs).
#
# Every cargo invocation passes --offline: the workspace has no external
# dependencies by design (see Cargo.toml), so CI must never need a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> millipede-audit (repo lint pass)"
cargo run --offline -q -p millipede-audit

echo "==> cargo clippy (workspace lints)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test"
cargo test --offline --workspace -q

echo "CI green."
