#!/usr/bin/env bash
# Offline-safe CI gate: formatting, the repo-specific lint pass, a release
# build, and the full test suite (which includes the invariant-sanitizer and
# determinism gates in tests/audit.rs).
#
# Every cargo invocation passes --offline: the workspace has no external
# dependencies by design (see Cargo.toml), so CI must never need a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> millipede-audit (repo lint pass)"
cargo run --offline -q -p millipede-audit

echo "==> cargo clippy (workspace lints)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# --workspace so the bench binaries the telemetry leg drives are built too
# (the root manifest is both workspace and facade package, and a bare
# `cargo build` would only build the facade).
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> fast-forward differential (MILLIPEDE_FASTFORWARD=0 vs =1)"
# The golden digests are pinned against the cycle-by-cycle semantics; the
# differential suite proves fast-forwarding and parallel sweeps reproduce
# them bit-for-bit. Run both explicitly under each env setting so a
# regression in either mode (or in the env plumbing itself) fails CI.
MILLIPEDE_FASTFORWARD=0 cargo test --offline -q -p millipede \
    --test fastforward_differential --test golden_digests
MILLIPEDE_FASTFORWARD=1 cargo test --offline -q -p millipede \
    --test fastforward_differential --test golden_digests

echo "==> telemetry (MILLIPEDE_TELEMETRY=1 digests + trace export)"
# Telemetry is observational: the golden digests must hold with it on, and
# the telemetry suite's own differentials must pass under the env toggle.
MILLIPEDE_TELEMETRY=1 cargo test --offline -q -p millipede \
    --test golden_digests --test telemetry
# End-to-end: one bench with --trace-out must leave stdout byte-identical
# to a plain run and emit JSON that a strict parser accepts.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
./target/release/fig3 --chunks 2 --quiet > "$trace_dir/plain.out"
./target/release/fig3 --chunks 2 --quiet \
    --trace-out "$trace_dir/trace.json" > "$trace_dir/traced.out"
cmp "$trace_dir/plain.out" "$trace_dir/traced.out"
if command -v python3 > /dev/null; then
    python3 - "$trace_dir/trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert any(e.get("ph") == "C" for e in events), "no counter samples"
assert any(e.get("ph") == "X" for e in events), "no discrete events"
print(f"trace OK: {len(events)} events")
EOF
fi

echo "CI green."
