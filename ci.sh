#!/usr/bin/env bash
# Offline-safe CI gate: formatting, the repo-specific lint pass, a release
# build, and the full test suite (which includes the invariant-sanitizer and
# determinism gates in tests/audit.rs).
#
# Every cargo invocation passes --offline: the workspace has no external
# dependencies by design (see Cargo.toml), so CI must never need a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> millipede-audit (repo lint pass)"
cargo run --offline -q -p millipede-audit

echo "==> cargo clippy (workspace lints)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# --workspace so the bench binaries the telemetry leg drives are built too
# (the root manifest is both workspace and facade package, and a bare
# `cargo build` would only build the facade).
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> fast-forward differential (MILLIPEDE_FASTFORWARD=0 vs =1)"
# The golden digests are pinned against the cycle-by-cycle semantics; the
# differential suite proves fast-forwarding and parallel sweeps reproduce
# them bit-for-bit. Run both explicitly under each env setting so a
# regression in either mode (or in the env plumbing itself) fails CI.
MILLIPEDE_FASTFORWARD=0 cargo test --offline -q -p millipede \
    --test fastforward_differential --test golden_digests
MILLIPEDE_FASTFORWARD=1 cargo test --offline -q -p millipede \
    --test fastforward_differential --test golden_digests

echo "==> scheduler differential (MILLIPEDE_SCHEDULER=poll vs =wheel)"
# The event-wheel engine must reproduce the polled schedule bit-for-bit:
# the pinned golden digests and the randomized scheduler differentials
# both run under each setting of the env knob, so a regression in either
# engine (or in the env plumbing itself) fails CI.
MILLIPEDE_SCHEDULER=poll cargo test --offline -q -p millipede \
    --test golden_digests --test scheduler_differential
MILLIPEDE_SCHEDULER=wheel cargo test --offline -q -p millipede \
    --test golden_digests --test scheduler_differential

echo "==> workload-family reference differential (both schedulers)"
# The graph and dense families' acceptance bar: simulated observable
# results match each kernel's plain-Rust host reference bit-exactly on all
# eight variants, FF on and off, under both schedulers. The suite sets FF
# and the scheduler per-combo itself; running it under both env settings
# additionally covers the SimConfig::default() plumbing.
MILLIPEDE_SCHEDULER=poll cargo test --offline -q -p millipede \
    --test workload_reference
MILLIPEDE_SCHEDULER=wheel cargo test --offline -q -p millipede \
    --test workload_reference

echo "==> decoded-interpreter differential (both schedulers)"
# The predecoded micro-op interpreter must be bit-identical to the
# reference enum interpreter (fixtures, kernels, randomized programs), and
# every timing model must still validate end-to-end through it. The model
# leg reads MILLIPEDE_SCHEDULER via SimConfig::default(), so running under
# both settings covers decoded execution on both scheduler engines.
MILLIPEDE_SCHEDULER=poll cargo test --offline -q -p millipede \
    --test decoded_differential
MILLIPEDE_SCHEDULER=wheel cargo test --offline -q -p millipede \
    --test decoded_differential

echo "==> telemetry (MILLIPEDE_TELEMETRY=1 digests + trace export)"
# Telemetry is observational: the golden digests must hold with it on, and
# the telemetry suite's own differentials must pass under the env toggle.
MILLIPEDE_TELEMETRY=1 cargo test --offline -q -p millipede \
    --test golden_digests --test telemetry
# End-to-end: one bench with --trace-out must leave stdout byte-identical
# to a plain run and emit JSON that a strict parser accepts.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
./target/release/fig3 --chunks 2 --quiet > "$trace_dir/plain.out"
./target/release/fig3 --chunks 2 --quiet \
    --trace-out "$trace_dir/trace.json" > "$trace_dir/traced.out"
cmp "$trace_dir/plain.out" "$trace_dir/traced.out"
if command -v python3 > /dev/null; then
    python3 - "$trace_dir/trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert any(e.get("ph") == "C" for e in events), "no counter samples"
assert any(e.get("ph") == "X" for e in events), "no discrete events"
print(f"trace OK: {len(events)} events")
EOF
fi

echo "==> observability (manifests + millipede-cli report)"
# Run manifests are observational: two short sweeps with --manifest-out must
# leave stdout byte-identical to a plain run, emit millipede-manifest/1 JSON
# that an independent parser accepts with the host self-profiling populated,
# render and diff through `millipede-cli report`, and regression-check
# against the committed BENCH baseline (huge threshold: this leg gates the
# plumbing, not this host's speed; the digest-invisibility and
# injected-regression bars live in tests/manifest.rs).
manifest_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$manifest_dir"' EXIT
./target/release/fig3 --chunks 2 --quiet > "$manifest_dir/plain.out"
./target/release/fig3 --chunks 2 --quiet \
    --manifest-out "$manifest_dir/a.json" > "$manifest_dir/a.out"
./target/release/fig3 --chunks 2 --quiet \
    --manifest-out "$manifest_dir/b.json" > "$manifest_dir/b.out"
cmp "$manifest_dir/plain.out" "$manifest_dir/a.out"
cmp "$manifest_dir/plain.out" "$manifest_dir/b.out"
if command -v python3 > /dev/null; then
    python3 - "$manifest_dir/a.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "millipede-manifest/1", f"bad schema {doc.get('schema')}"
host = doc["host"]
assert host["phases_ms"]["run"] > 0, "run phase wall missing"
assert host["retired_instructions_per_sec"] > 0, "retired-instr rate missing"
assert host["sweep"]["points"] == len(doc["runs"]), "sweep points != runs"
for run in doc["runs"]:
    assert run["digest"].startswith("0x"), f"{run['label']}: missing digest"
    assert run["metrics"], f"{run['label']}: empty metrics registry"
print(f"manifest OK: {len(doc['runs'])} runs, {sum(len(r['metrics']) for r in doc['runs'])} metrics")
EOF
fi
./target/release/millipede-cli report "$manifest_dir/a.json" > /dev/null
./target/release/millipede-cli report --diff \
    "$manifest_dir/a.json" "$manifest_dir/b.json" > /dev/null
./target/release/millipede-cli count millipede --chunks 128 \
    --manifest-out "$manifest_dir/cli.json" > /dev/null 2> /dev/null
./target/release/millipede-cli report --check "$manifest_dir/cli.json" \
    --baseline BENCH_9.json --threshold-pct 100000 | tail -n 1

echo "==> kernel verifier sweep (millipede-audit --kernels)"
# The audit binary's kernel-only mode: every compiled-in kernel (the eight
# BMLAs plus the graph and dense families, from Benchmark::ALL) must verify
# clean with zero suppressions.
cargo run --offline -q -p millipede-audit -- --kernels

echo "==> kernel verifier (millipede-cli verify)"
# The static verifier must hold its acceptance bar: all fourteen
# compiled-in kernels clean, and every seeded-bug fixture rejected with the
# exact code its `# verify-expect:` header declares. The JSON report must
# parse.
verify_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$manifest_dir" "$verify_dir"' EXIT
./target/release/millipede-cli verify --kernels --json > "$verify_dir/kernels.json"
# Fixture sweep: the CLI exits 1 when any fixture is dirty — expected here,
# so capture the report and let the checker below judge it.
./target/release/millipede-cli verify tests/fixtures/*.asm --json \
    > "$verify_dir/fixtures.json" || true
if command -v python3 > /dev/null; then
    python3 - "$verify_dir/kernels.json" "$verify_dir/fixtures.json" <<'EOF'
import json, re, sys, glob, os

kernels = json.load(open(sys.argv[1]))
assert len(kernels) == 14, f"expected 14 kernel reports, got {len(kernels)}"
for r in kernels:
    assert r["clean"], f"kernel {r['program']} not clean: {r['diagnostics']}"
    assert r["suppressed"] == 0, f"kernel {r['program']} needed suppressions"

fixtures = {r["program"]: r for r in json.load(open(sys.argv[2]))}
expected = {}
for path in sorted(glob.glob("tests/fixtures/*.asm")):
    name = os.path.splitext(os.path.basename(path))[0]
    m = re.search(r"#\s*verify-expect:\s*(\S+)", open(path).read())
    assert m, f"{path}: missing verify-expect header"
    expected[name] = m.group(1)
assert set(expected) == set(fixtures), "fixture/report name mismatch"
for name, want in expected.items():
    r = fixtures[name]
    if want == "clean":
        assert r["clean"], f"{name}: expected clean, got {r['diagnostics']}"
    else:
        codes = {d["code"] for d in r["diagnostics"]}
        assert want in codes, f"{name}: expected {want}, got {codes or 'clean'}"
covered = {v for v in expected.values() if v != "clean"}
assert covered == {f"MV{i:03d}" for i in range(1, 11)}, f"corpus gaps: {covered}"
print(f"verifier OK: {len(kernels)} kernels clean, {len(expected)} fixtures as expected")
EOF
fi

echo "==> example pipeline (scripts/run_examples.sh)"
# asm -> verify -> disasm round-trip -> functional run over the fixture
# corpus; disasm or toolchain failures are fatal inside the script.
scripts/run_examples.sh > /dev/null

echo "CI green."
