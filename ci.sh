#!/usr/bin/env bash
# Offline-safe CI gate: formatting, the repo-specific lint pass, a release
# build, and the full test suite (which includes the invariant-sanitizer and
# determinism gates in tests/audit.rs).
#
# Every cargo invocation passes --offline: the workspace has no external
# dependencies by design (see Cargo.toml), so CI must never need a registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> millipede-audit (repo lint pass)"
cargo run --offline -q -p millipede-audit

echo "==> cargo clippy (workspace lints)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> fast-forward differential (MILLIPEDE_FASTFORWARD=0 vs =1)"
# The golden digests are pinned against the cycle-by-cycle semantics; the
# differential suite proves fast-forwarding and parallel sweeps reproduce
# them bit-for-bit. Run both explicitly under each env setting so a
# regression in either mode (or in the env plumbing itself) fails CI.
MILLIPEDE_FASTFORWARD=0 cargo test --offline -q -p millipede \
    --test fastforward_differential --test golden_digests
MILLIPEDE_FASTFORWARD=1 cargo test --offline -q -p millipede \
    --test fastforward_differential --test golden_digests

echo "CI green."
